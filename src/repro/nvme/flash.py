"""Flash array: channel-parallel NAND with a page-mapped FTL behind it.

Page ``p`` is served by channel ``p mod channels``; each channel is a FIFO
server, which yields the classic flash throughput curve: bandwidth rises
with concurrency until all channels are busy and then saturates at
``channels * page_size / latency`` — the calibration anchor for the paper's
Figures 5 and 6.

Data and mapping live in the :class:`~repro.nvme.ftl.Ftl`: reads resolve
logical LBAs through the L2P map (identity for never-written pages, so
read-only golden traces are unchanged), and programs are out-of-place with
invalidation and background GC when ``SsdConfig.gc_enabled``.  The timing
plane here charges channel occupancy for host reads/programs and for the
FTL's GC relocations and erases — GC visibly steals host bandwidth.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.config import SsdConfig
from repro.nvme.ftl import Ftl
from repro.sim.engine import Simulator, Timeout
from repro.sim.resources import FifoServer


class FlashArray:
    """NAND flash behind one SSD controller."""

    #: Poll period while a host program waits for GC to free blocks (ns).
    GC_WAIT_POLL_NS = 50_000.0
    #: Polls before a blocked program gives up with a write fault (a full
    #: device that GC cannot help is surfaced, not hung).
    GC_WAIT_LIMIT = 1024

    def __init__(self, sim: Simulator, cfg: SsdConfig):
        self.sim = sim
        self.cfg = cfg
        self._channels = [
            FifoServer(sim, name=f"{cfg.name}.ch{i}") for i in range(cfg.channels)
        ]
        self.reads = 0
        self.writes = 0
        self.read_errors = 0
        self.write_errors = 0
        #: Armed by the host when the fault plan is active
        #: (:class:`repro.faults.FaultInjector`); None costs nothing.
        self.injector = None
        #: Logical->physical mapping, page store, and GC (AGL014: the page
        #: store is mutated only inside ``repro/nvme/ftl.py``).
        self.ftl = Ftl(self)

    # -- data plane ------------------------------------------------------------

    def page_in_range(self, lba: int) -> bool:
        return 0 <= lba < self.cfg.num_pages

    def read_page_data(self, lba: int) -> np.ndarray:
        """Current contents of a page.  Never-written pages return a shared
        read-only zero page (no per-read allocation on cold scans)."""
        return self.ftl.read(lba)

    def write_page_data(self, lba: int, data: np.ndarray) -> None:
        """Host-side page install (no simulated time); see
        :meth:`Ftl.host_write` for placement rules."""
        if data.size != self.cfg.page_size:
            raise ValueError(
                f"flash writes are page-granular: got {data.size} B, "
                f"expected {self.cfg.page_size} B"
            )
        self.ftl.host_write(lba, data)

    def populated_pages(self) -> int:
        return self.ftl.mapped_pages()

    # -- timing plane ------------------------------------------------------------

    def _channel(self, pp: int) -> FifoServer:
        return self._channels[pp % self.cfg.channels]

    def channel_process(
        self, key: int, latency_ns: float
    ) -> Generator[Any, Any, None]:
        """Occupy channel ``key mod channels`` for ``latency_ns`` (the FTL's
        GC charges its relocation reads and block erases through this)."""
        yield from self._channels[key % self.cfg.channels].process(latency_ns)

    def read_service(self, lba: int) -> Generator[Any, Any, bool]:
        """Occupy the page's channel for one flash read; returns success."""
        self.reads += 1
        pp = self.ftl.phys(lba)
        if self.injector is None:
            yield from self._channel(pp).process(self.cfg.read_latency_ns)
            return True
        latency = self.cfg.read_latency_ns * self.injector.flash_latency_mult(pp)
        yield from self._channel(pp).process(latency)
        if self.injector.flash_read_fails(pp):
            self.read_errors += 1
            return False
        return True

    def timed_program(self, pp: int) -> Generator[Any, Any, bool]:
        """Channel occupancy + fault dice for one page program at a known
        physical page (host path and GC relocations share this)."""
        if self.injector is None:
            yield from self._channel(pp).process(self.cfg.write_latency_ns)
            return True
        latency = self.cfg.write_latency_ns * self.injector.flash_latency_mult(pp)
        yield from self._channel(pp).process(latency)
        if self.injector.flash_write_fails(pp):
            self.write_errors += 1
            return False
        return True

    def program_service(
        self, lba: int, data: Optional[np.ndarray] = None
    ) -> Generator[Any, Any, bool]:
        """One host page program through the FTL; returns success.

        With GC enabled the program is out-of-place: allocate, occupy the
        *new* page's channel, then commit mapping + data and invalidate the
        old copy.  A full device stalls here polling for GC progress — the
        GC pause tail — and eventually faults rather than hanging.  With GC
        disabled the program lands in place at the legacy channel.
        """
        self.writes += 1
        ftl = self.ftl
        if self.cfg.gc_enabled:
            pp = ftl.alloc_page()
            spins = 0
            while pp is None:
                ftl.maybe_start_gc(force=True)
                if spins >= self.GC_WAIT_LIMIT:
                    self.write_errors += 1
                    return False
                spins += 1
                yield Timeout(self.GC_WAIT_POLL_NS)
                pp = ftl.alloc_page()
            if spins:
                ftl.host_gc_stalls += 1
                ftl.host_gc_stall_ns += spins * self.GC_WAIT_POLL_NS
        else:
            pp = ftl.phys(lba)
        ok = yield from self.timed_program(pp)
        if not ok:
            if self.cfg.gc_enabled:
                ftl.burn_page(pp)
            return False
        ftl.commit_program(lba, pp, data)
        ftl.maybe_start_gc()
        return True

    #: Back-compat alias: callers that only need timing semantics (no
    #: payload) issue a program with ``data=None``.
    write_service = program_service

    def channel_utilization(self) -> float:
        if not self._channels:
            return 0.0
        return sum(c.utilization() for c in self._channels) / len(self._channels)


def load_array(
    flash: FlashArray, start_lba: int, data: np.ndarray
) -> int:
    """Host-side helper: place ``data`` onto flash starting at ``start_lba``
    (no simulated time — this models pre-loading the dataset before the
    experiment starts, as the paper does with Criteo/GAP data).

    Returns the number of pages written.
    """
    raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
    page = flash.cfg.page_size
    n_pages = (raw.size + page - 1) // page
    for i in range(n_pages):
        chunk = raw[i * page : (i + 1) * page]
        buf = np.zeros(page, dtype=np.uint8)
        buf[: chunk.size] = chunk
        flash.write_page_data(start_lba + i, buf)
    return n_pages


def read_array(
    flash: FlashArray,
    start_lba: int,
    nbytes: int,
    dtype: np.dtype | str = np.uint8,
) -> np.ndarray:
    """Host-side helper: gather ``nbytes`` from flash (no simulated time)."""
    page = flash.cfg.page_size
    n_pages = (nbytes + page - 1) // page
    raw = np.concatenate(
        [flash.read_page_data(start_lba + i) for i in range(n_pages)]
    )[:nbytes]
    return raw.view(dtype)
