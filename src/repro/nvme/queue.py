"""Submission/completion queue rings with NVMe pointer-and-phase semantics.

These classes hold protocol *state*; simulated time is charged by the
actors that touch them (GPU threads in :mod:`repro.core.issue`, the SSD
controller in :mod:`repro.nvme.device`).

Pointers are kept monotonic (not wrapped) internally, which sidesteps the
classic full/empty ring ambiguity; the slot index is always ``ptr % depth``.

The per-SQE life cycle implements the paper's Algorithm 2 lock states:

    EMPTY -> RESERVED -> UPDATED -> ISSUED -> EMPTY
             (thread     (command   (tail      (completion seen;
             owns slot)  visible)   published)  slot reusable)

``RESERVED`` is the window between a thread winning the slot and its command
becoming visible in memory; to every other thread it is indistinguishable
from EMPTY's "not yet visible" case, exactly as in the paper's tail-scan
description (§3.3.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.config import PcieConfig
from repro.mem.hbm import HbmBuffer
from repro.mem.pcie import Doorbell
from repro.nvme.command import CQE_SIZE, SQE_SIZE, NvmeCommand, NvmeCompletion
from repro.sim.engine import SimError, Simulator


class SlotState(enum.IntEnum):
    EMPTY = 0
    RESERVED = 1
    UPDATED = 2
    ISSUED = 3


class SubmissionQueue:
    """One NVMe submission queue living in simulated GPU HBM."""

    def __init__(
        self,
        sim: Simulator,
        qid: int,
        depth: int,
        buffer: HbmBuffer,
        doorbell: Doorbell,
    ):
        if depth < 2:
            raise ValueError("NVMe queues need at least 2 entries")
        self.sim = sim
        self.qid = qid
        self.depth = depth
        self.buffer = buffer
        self.doorbell = doorbell
        self.entries: List[Optional[NvmeCommand]] = [None] * depth
        self.state: List[SlotState] = [SlotState.EMPTY] * depth
        #: Optional :class:`~repro.sim.trace.EventLog` for protocol events.
        self.log = None
        #: Monotonic count of slots ever reserved (next slot = alloc_tail % depth).
        self.alloc_tail = 0
        #: Monotonic publish pointer: slots below it have been doorbell-visible.
        self.issued_tail = 0
        #: Monotonic device-side fetch pointer.
        self.fetch_head = 0
        self.submitted = 0
        #: Monotonic count of slots returned to EMPTY (occupancy is
        #: ``alloc_tail - released`` without scanning the ring).
        self.released = 0
        #: Optional :class:`repro.telemetry.Gauge` (occupancy timeline);
        #: None — the default — costs one attribute check per transition.
        self.occupancy = None

    # -- producer (GPU) side --------------------------------------------------

    def try_reserve(self) -> Optional[tuple[int, int]]:
        """Atomically claim the next ring slot.

        Returns ``(slot, cid)`` or ``None`` if the queue is full.  The CID is
        the slot index: since a slot stays non-EMPTY until its completion is
        processed, slot indices are unique among outstanding commands in
        this SQ — the paper's uniqueness requirement for CIDs "within a
        batch using the same SQ".
        """
        slot = self.alloc_tail % self.depth
        if self.state[slot] is not SlotState.EMPTY:
            return None
        self.state[slot] = SlotState.RESERVED
        self.alloc_tail += 1
        if self.occupancy is not None:
            self.occupancy.set(self.alloc_tail - self.released)
        if self.log is not None:
            self.log.emit(
                "sq.reserve", src=self, qid=self.qid, slot=slot, cid=slot,
                alloc_tail=self.alloc_tail,
            )
        return slot, slot

    def publish(self, slot: int, cmd: NvmeCommand) -> None:
        """Make the command visible in memory (RESERVED -> UPDATED)."""
        if self.state[slot] is not SlotState.RESERVED:
            raise SimError(
                f"SQ{self.qid} slot {slot} published from {self.state[slot].name}"
            )
        cmd.sq_id = self.qid
        cmd.slot = slot
        self.entries[slot] = cmd
        self.state[slot] = SlotState.UPDATED
        if self.log is not None:
            self.log.emit(
                "sq.publish", src=self, qid=self.qid, slot=slot, cid=cmd.cid
            )

    def advance_tail(self) -> Optional[int]:
        """Scan UPDATED slots in ring order, mark them ISSUED, and return the
        new monotonic tail to write to the doorbell (Algorithm 2 line 15),
        or ``None`` if nothing new became publishable."""
        moved = False
        while self.issued_tail < self.alloc_tail:
            slot = self.issued_tail % self.depth
            if self.state[slot] is not SlotState.UPDATED:
                break  # not visible yet (EMPTY/RESERVED) -> stop the batch
            self.state[slot] = SlotState.ISSUED
            self.issued_tail += 1
            self.submitted += 1
            moved = True
        if moved and self.log is not None:
            self.log.emit(
                "sq.advance", src=self, qid=self.qid, tail=self.issued_tail,
                alloc_tail=self.alloc_tail,
            )
        return self.issued_tail if moved else None

    def release(self, slot: int) -> None:
        """Free the slot after its completion is processed (-> EMPTY)."""
        if self.state[slot] is not SlotState.ISSUED:
            raise SimError(
                f"SQ{self.qid} slot {slot} released from {self.state[slot].name}"
            )
        self.entries[slot] = None
        self.state[slot] = SlotState.EMPTY
        self.released += 1
        if self.occupancy is not None:
            self.occupancy.set(self.alloc_tail - self.released)
        if self.log is not None:
            self.log.emit("sq.release", src=self, qid=self.qid, slot=slot)

    # -- consumer (SSD) side ---------------------------------------------------

    def device_pending(self) -> int:
        """Commands published but not yet fetched, as seen by the device."""
        return self.doorbell.device_value - self.fetch_head

    def device_fetch(self) -> NvmeCommand:
        """Pop the next command at the device fetch head."""
        if self.device_pending() <= 0:
            raise SimError(f"SQ{self.qid}: device fetch with nothing pending")
        slot = self.fetch_head % self.depth
        cmd = self.entries[slot]
        if cmd is None or self.state[slot] is not SlotState.ISSUED:
            raise SimError(
                f"SQ{self.qid}: device fetched slot {slot} in state "
                f"{self.state[slot].name} (doorbell raced ahead of memory?)"
            )
        self.fetch_head += 1
        if self.log is not None:
            self.log.emit(
                "sq.fetch", src=self, qid=self.qid, slot=slot, cid=cmd.cid,
                fetch_head=self.fetch_head,
                doorbell=self.doorbell.device_value,
            )
        return cmd

    # -- introspection ----------------------------------------------------------

    def outstanding(self) -> int:
        return sum(1 for s in self.state if s is not SlotState.EMPTY)

    @property
    def sqe_bytes(self) -> int:
        return SQE_SIZE


@dataclass
class _CqSlot:
    completion: NvmeCompletion
    phase: bool


class CompletionQueue:
    """One NVMe completion queue living in simulated GPU HBM.

    The device posts entries with an alternating phase bit; the host detects
    new entries by comparing the stored phase with the phase expected for
    that pass of the ring, without ever clearing memory — exactly the
    mechanism Algorithm 1 polls on.
    """

    def __init__(
        self,
        sim: Simulator,
        qid: int,
        depth: int,
        buffer: HbmBuffer,
        doorbell: Doorbell,
    ):
        if depth < 2:
            raise ValueError("NVMe queues need at least 2 entries")
        self.sim = sim
        self.qid = qid
        self.depth = depth
        self.buffer = buffer
        #: Host-written head doorbell (monotonic consumed count).
        self.doorbell = doorbell
        self.slots: List[Optional[_CqSlot]] = [None] * depth
        #: Monotonic device-side post pointer.
        self.device_tail = 0
        #: Slots reserved by in-flight posts (between reserve and post).
        self._reserved = 0
        #: Monotonic host-side consumption pointer (local, pre-doorbell).
        self.host_head = 0
        self._space_waiters: list[Callable[[], None]] = []
        self.posted = 0
        #: Optional :class:`~repro.sim.trace.EventLog` for protocol events.
        self.log = None
        #: Optional :class:`repro.telemetry.Gauge` (occupancy timeline).
        self.occupancy = None

    # -- device side -------------------------------------------------------------

    def device_has_space(self) -> bool:
        """True if posting one more CQE would not overwrite an unconsumed
        entry.  The device compares its tail with the host's head doorbell —
        the reason the paper stresses that hosts must keep ringing CQ head
        doorbells or the SSD stalls (§2.1)."""
        return (
            self.device_tail + self._reserved - self.doorbell.device_value
            < self.depth
        )

    def device_try_reserve(self) -> bool:
        """Atomically claim space for one upcoming CQE post.  The post
        itself takes simulated time (CQE DMA), so concurrent executors must
        reserve before yielding or they could overfill the ring."""
        if not self.device_has_space():
            return False
        self._reserved += 1
        return True

    def device_post(self, completion: NvmeCompletion) -> None:
        if self._reserved > 0:
            self._reserved -= 1
        elif not self.device_has_space():
            raise SimError(f"CQ{self.qid}: post into a full queue")
        slot = self.device_tail % self.depth
        phase = self._phase_at(self.device_tail)
        self.slots[slot] = _CqSlot(completion, phase)
        if self.log is not None:
            self.log.emit(
                "cq.post", src=self, qid=self.qid, pos=self.device_tail,
                slot=slot, phase=phase, cid=completion.cid,
                sq_id=completion.sq_id, head_doorbell=self.doorbell.device_value,
            )
        self.device_tail += 1
        self.posted += 1
        if self.occupancy is not None:
            self.occupancy.set(self.device_tail - self.host_head)

    def add_space_waiter(self, callback: Callable[[], None]) -> None:
        """Device-side callback invoked when the host frees CQ space."""
        self._space_waiters.append(callback)

    def notify_space(self) -> None:
        waiters, self._space_waiters = self._space_waiters, []
        for cb in waiters:
            cb()

    # -- host side ------------------------------------------------------------------

    def _phase_at(self, pos: int) -> bool:
        """Phase bit for pass ``pos // depth``: True on pass 0, toggling
        each wrap, so stale entries from the previous pass never match."""
        return (pos // self.depth) % 2 == 0

    def peek(self, pos: int) -> Optional[NvmeCompletion]:
        """Read the CQE at monotonic position ``pos``; ``None`` unless a
        completion with the expected phase for this pass is present."""
        slot_obj = self.slots[pos % self.depth]
        if slot_obj is None:
            return None
        if slot_obj.phase != self._phase_at(pos):
            return None
        return slot_obj.completion

    def consume_to(self, pos: int) -> None:
        """Advance the host's local head to ``pos`` (not yet doorbelled)."""
        if pos < self.host_head or pos > self.device_tail:
            raise SimError(
                f"CQ{self.qid}: consume_to({pos}) outside "
                f"[{self.host_head}, {self.device_tail}]"
            )
        self.host_head = pos
        if self.occupancy is not None:
            self.occupancy.set(self.device_tail - self.host_head)
        if self.log is not None:
            self.log.emit("cq.consume", src=self, qid=self.qid, pos=pos)

    @property
    def cqe_bytes(self) -> int:
        return CQE_SIZE


class QueuePair:
    """An SQ/CQ pair sharing an index, as registered with one SSD."""

    def __init__(self, sq: SubmissionQueue, cq: CompletionQueue):
        if sq.qid != cq.qid:
            raise ValueError("queue pair must share an id")
        self.sq = sq
        self.cq = cq

    @property
    def qid(self) -> int:
        return self.sq.qid


def make_queue_pair(
    sim: Simulator,
    qid: int,
    depth: int,
    sq_buffer: HbmBuffer,
    cq_buffer: HbmBuffer,
    pcie_cfg: PcieConfig,
) -> QueuePair:
    """Construct a queue pair with fresh doorbell registers."""
    sq_db = Doorbell(sim, pcie_cfg, name=f"sq{qid}.db")
    cq_db = Doorbell(sim, pcie_cfg, name=f"cq{qid}.db")
    sq = SubmissionQueue(sim, qid, depth, sq_buffer, sq_db)
    cq = CompletionQueue(sim, qid, depth, cq_buffer, cq_db)
    return QueuePair(sq, cq)
