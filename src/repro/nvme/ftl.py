"""Page-mapped flash translation layer: L2P mapping, out-of-place programs,
garbage collection, and write-amplification accounting.

Every page access on an SSD flows through one :class:`Ftl` (owned by its
:class:`~repro.nvme.flash.FlashArray`):

- **Reads** resolve the logical LBA through the L2P map.  Never-written
  LBAs fall back to the *identity* physical page (``phys == lba``), so a
  read-only run — no simulated programs, hence an empty allocator and an
  idle GC — touches exactly the channels the pre-FTL model touched and its
  golden traces stay bit-identical.
- **Host programs** (when ``SsdConfig.gc_enabled``) are out-of-place: a
  fresh physical page is allocated from the active block, the old mapping
  is invalidated, and the device slowly consumes its over-provisioned
  spare blocks.  With GC disabled, programs update in place (WAF = 1.0,
  no erases) — the legacy timing model and the GC-off baseline.
- **Garbage collection** runs as a lazily-spawned daemon once the free
  pool drops below ``gc_low_water_blocks``: it picks victims (``greedy``
  min-valid or Rosenblum-style ``cost_benefit``), relocates live pages
  (NAND read + program, *stealing host channel bandwidth*), then erases
  the block at ``erase_latency_ns`` — the program/erase asymmetry GC
  pauses are made of.

The page store ``Ftl._pages`` (physical page -> bytes) is the only place
flash contents live; mutating it anywhere outside this module is banned by
lint rule AGL014.  Accounting invariant (checked by tests): every committed
program adds one live page and every invalidation removes one, so
``host_programs + gc_programs + seeded_pages - invalidations == live_pages``.

Design space per EagleTree and the Amber/SimpleSSD holistic model; the
channel-striped page layout (page ``p`` on channel ``p mod channels``) is
inherited from the existing flash model, so an erase is charged to channel
``block mod channels`` as the block's nominal home channel.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

import numpy as np

from repro.sim.engine import Process, SimError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (flash owns us)
    from repro.nvme.flash import FlashArray

#: Block states.
_FREE = 0
_ACTIVE = 1
_OCCUPIED = 2
_COLLECTING = 3
_BAD = 4


class Ftl:
    """One SSD's translation layer, block accounting, and GC machinery."""

    #: Free blocks held back from host allocation so GC always has a
    #: relocation target (the classic reserved-block rule).
    GC_RESERVE = 1

    def __init__(self, flash: "FlashArray"):
        self.flash = flash
        self.sim = flash.sim
        self.cfg = flash.cfg
        cfg = self.cfg
        #: Logical LBA -> physical page (absent = identity, never written).
        self._l2p: dict[int, int] = {}
        #: Physical page -> owning logical LBA (live pages only).
        self._p2l: dict[int, int] = {}
        #: Physical page -> contents.  THE page store (see AGL014).
        self._pages: dict[int, np.ndarray] = {}
        self._state = [_FREE] * cfg.physical_blocks
        self._valid = [0] * cfg.physical_blocks
        self._sealed_at = [0.0] * cfg.physical_blocks
        #: Pages allocated but not yet committed (or burned), per block.
        #: GC must not victimize a block with programs still in flight:
        #: erasing under them would drop the committing page's data.
        self._inflight = [0] * cfg.physical_blocks
        #: Free pool as a lazy stack: blocks seeded by host preload keep a
        #: stale entry here and are skipped at pop time by state check.
        self._free_list = list(range(cfg.physical_blocks - 1, -1, -1))
        self.free_blocks = cfg.physical_blocks
        #: Separate write frontiers: host programs and GC relocations fill
        #: different active blocks.  A shared frontier lets a host stall
        #: loop drain the pages of the very block GC just opened out of the
        #: reserve — starving relocation until the device wedges with
        #: reclaimable space it can no longer reach.
        self._active: Optional[int] = None
        self._next_off = 0
        self._gc_active: Optional[int] = None
        self._gc_next_off = 0
        # -- accounting (surfaced through SsdController.stats()) -----------
        self.host_programs = 0
        self.gc_programs = 0
        self.gc_reads = 0
        self.erases = 0
        self.invalidations = 0
        self.seeded_pages = 0
        self.bad_blocks = 0
        self.gc_runs = 0
        #: Simulated ns the GC daemon spent relocating/erasing.
        self.gc_busy_ns = 0.0
        #: Simulated ns host programs stalled waiting for GC to free blocks.
        self.host_gc_stall_ns = 0.0
        self.host_gc_stalls = 0
        self._gc_proc: Optional[Process] = None
        self._gc_name = f"{cfg.name}.ftl.gc"
        self._gc_track = f"{cfg.name}.gc"
        self._zero_page = np.zeros(cfg.page_size, dtype=np.uint8)
        self._zero_page.flags.writeable = False
        #: Optional :class:`repro.telemetry.Telemetry` session (GC spans);
        #: None — the default — costs one check per GC run.
        self.tel = None

    # -- translation ---------------------------------------------------------

    def phys(self, lba: int) -> int:
        """Physical page serving ``lba`` (identity when never written)."""
        return self._l2p.get(lba, lba)

    def mapped_pages(self) -> int:
        return len(self._l2p)

    @property
    def live_pages(self) -> int:
        return len(self._p2l)

    @property
    def waf(self) -> float:
        """Write amplification: (host + GC programs) / host programs."""
        if self.host_programs == 0:
            return 1.0
        return (self.host_programs + self.gc_programs) / self.host_programs

    # -- data plane (host-side, no simulated time) ---------------------------

    def read(self, lba: int) -> np.ndarray:
        """Contents of a logical page; a shared read-only zero page when the
        LBA was never written (cold scans allocate nothing)."""
        pp = self._l2p.get(lba)
        if pp is None:
            return self._zero_page
        page = self._pages.get(pp)
        return page if page is not None else self._zero_page

    def host_write(self, lba: int, data: np.ndarray) -> None:
        """Untimed host-side page install (dataset preload, rebalance).

        A never-written LBA is placed at its identity physical page so the
        read path's channel assignment — and therefore every read-only
        golden trace — is unchanged; already-mapped LBAs are overwritten in
        place.  Identity pages made unusable by earlier simulated programs
        (owned, mid-GC, or ahead of the active block's allocation cursor)
        fall back to the normal allocator.
        """
        pp = self._l2p.get(lba)
        if pp is None:
            pp = lba
            blk = pp // self.cfg.pages_per_block
            usable = (
                pp not in self._p2l
                and self._state[blk] not in (_COLLECTING, _BAD)
                and not (
                    blk == self._active
                    and pp - blk * self.cfg.pages_per_block >= self._next_off
                )
                and not (
                    blk == self._gc_active
                    and pp - blk * self.cfg.pages_per_block
                    >= self._gc_next_off
                )
            )
            if not usable:
                alt = self.alloc_page()
                if alt is None:
                    raise SimError(
                        f"{self.cfg.name}: no physical page for host preload "
                        f"of lba {lba}"
                    )
                pp = alt
                self._clear_inflight(pp)  # installed synchronously below
            self._l2p[lba] = pp
            self._claim(pp, lba)
            self.seeded_pages += 1
        self._pages[pp] = np.array(data, dtype=np.uint8, copy=True)

    # -- allocation and commit -----------------------------------------------

    def alloc_page(self, *, gc: bool = False) -> Optional[int]:
        """Next out-of-place program target, or None when the device is out
        of writable blocks (host callers then stall on GC).

        Host and GC allocate from *separate* active blocks: the host
        frontier refuses to open a block out of the GC reserve, and never
        touches the GC frontier's pages, so relocation always has room to
        make forward progress.
        """
        ppb = self.cfg.pages_per_block
        active = self._gc_active if gc else self._active
        if active is None:
            if not gc and self.free_blocks <= self.GC_RESERVE:
                return None
            blk = self._pop_free()
            if blk is None:
                return None
            self._state[blk] = _ACTIVE
            self.free_blocks -= 1
            if gc:
                self._gc_active = blk
                self._gc_next_off = 0
            else:
                self._active = blk
                self._next_off = 0
            active = blk
        if gc:
            pp = active * ppb + self._gc_next_off
            self._gc_next_off += 1
            if self._gc_next_off >= ppb:
                self._seal(active)
                self._gc_active = None
        else:
            pp = active * ppb + self._next_off
            self._next_off += 1
            if self._next_off >= ppb:
                self._seal(active)
                self._active = None
        self._inflight[pp // ppb] += 1
        return pp

    def _pop_free(self) -> Optional[int]:
        while self._free_list:
            blk = self._free_list.pop()
            if self._state[blk] == _FREE:
                return blk
        return None

    def _seal(self, blk: int) -> None:
        self._state[blk] = _OCCUPIED
        self._sealed_at[blk] = self.sim.now

    def _clear_inflight(self, pp: int) -> None:
        blk = pp // self.cfg.pages_per_block
        if self._inflight[blk] > 0:
            self._inflight[blk] -= 1

    def burn_page(self, pp: int) -> None:
        """An allocated page's program faulted: the page is dead space
        until its block is erased, and its block is collectible again."""
        self._clear_inflight(pp)

    def _claim(self, pp: int, lba: int) -> None:
        """Record ``pp`` as the live copy of ``lba`` (block bookkeeping)."""
        self._p2l[pp] = lba
        blk = pp // self.cfg.pages_per_block
        self._valid[blk] += 1
        if self._state[blk] == _FREE:
            # In-place/identity writes land in blocks the allocator never
            # opened; they leave the free pool here.
            self._state[blk] = _OCCUPIED
            self.free_blocks -= 1

    def commit_program(
        self,
        lba: int,
        pp: int,
        data: Optional[np.ndarray] = None,
        *,
        gc: bool = False,
    ) -> None:
        """Make a successful page program visible: store data, flip the L2P
        entry, invalidate the superseded physical page."""
        self._clear_inflight(pp)
        old = self._l2p.get(lba)
        if data is not None:
            self._pages[pp] = np.array(data, dtype=np.uint8, copy=True)
        elif old is not None and old != pp and old in self._pages:
            # Logical rewrite without payload (timing-only callers) and GC
            # relocation both carry the old contents forward.
            self._pages[pp] = self._pages[old]
        self._l2p[lba] = pp
        if self._p2l.get(pp) != lba:
            self._claim(pp, lba)
        if gc:
            self.gc_programs += 1
        else:
            self.host_programs += 1
        if old is not None:
            if old != pp:
                self._invalidate(old)
            else:
                # In-place rewrite (GC disabled): the superseded copy died
                # at the same physical page; the ledger still records it.
                self.invalidations += 1

    def _invalidate(self, pp: int) -> None:
        self._valid[pp // self.cfg.pages_per_block] -= 1
        self._p2l.pop(pp, None)
        self._pages.pop(pp, None)
        self.invalidations += 1

    # -- garbage collection --------------------------------------------------

    def maybe_start_gc(self, *, force: bool = False) -> None:
        """Spawn the GC daemon when the free pool is low (lazy: a run that
        never programs never creates the process)."""
        cfg = self.cfg
        if not cfg.gc_enabled:
            return
        if self._gc_proc is not None and self._gc_proc.alive:
            return
        if not force and self.free_blocks >= cfg.gc_low_water_blocks:
            return
        self._gc_proc = self.sim.spawn(
            self._gc_run(), name=self._gc_name, daemon=True
        )

    def _gc_run(self) -> Generator[Any, Any, None]:
        cfg = self.cfg
        t0 = self.sim.now
        moved = 0
        collected = 0
        self.gc_runs += 1
        while self.free_blocks < cfg.gc_high_water_blocks:
            victim = self._pick_victim()
            if victim is None:
                break
            mark = self.sim.now
            res = yield from self._collect(victim)
            # Accrue per victim, not per run: a daemon still collecting
            # when the experiment window closes has already spent this.
            self.gc_busy_ns += self.sim.now - mark
            if res is None:
                # Out of relocation targets (bad-block attrition or fault
                # burn): no forward progress is possible this run.
                break
            moved += res
            collected += 1
        if self.tel is not None:
            self.tel.spans.complete(
                "gc.run", "nvme", self._gc_track, t0,
                moved_pages=moved, blocks=collected,
                free_blocks=self.free_blocks,
            )

    def _pick_victim(self) -> Optional[int]:
        """Victim block id, or None when nothing reclaimable exists."""
        ppb = self.cfg.pages_per_block
        best: Optional[int] = None
        if self.cfg.gc_policy == "greedy":
            best_valid = ppb
            for blk, state in enumerate(self._state):
                if state != _OCCUPIED or self._inflight[blk]:
                    continue
                v = self._valid[blk]
                if v < best_valid:
                    best, best_valid = blk, v
        else:  # cost_benefit
            now = self.sim.now
            best_score = 0.0
            for blk, state in enumerate(self._state):
                if state != _OCCUPIED or self._inflight[blk]:
                    continue
                v = self._valid[blk]
                if v >= ppb:
                    continue
                u = v / ppb
                # Rosenblum benefit/cost with a +1 ns age floor so fully
                # cold, fully invalid blocks still score.
                score = (1.0 - u) / (1.0 + u) * (
                    now - self._sealed_at[blk] + 1.0
                )
                if best is None or score > best_score:
                    best, best_score = blk, score
        return best

    def _collect(self, victim: int) -> Generator[Any, Any, Optional[int]]:
        """Relocate the victim's live pages, then erase it.  Returns the
        number of pages moved, or None when the collection had to abort
        for lack of relocation targets (the victim keeps its remaining
        live pages and returns to the occupied pool)."""
        cfg = self.cfg
        flash = self.flash
        ppb = cfg.pages_per_block
        base = victim * ppb
        self._state[victim] = _COLLECTING
        moved = 0
        for pp in range(base, base + ppb):
            lba = self._p2l.get(pp)
            if lba is None:
                continue
            yield from flash.channel_process(pp, cfg.read_latency_ns)
            self.gc_reads += 1
            while True:
                new_pp = self.alloc_page(gc=True)
                if new_pp is None:
                    # Already-moved pages are committed; the rest stay
                    # live where they are.
                    self._state[victim] = _OCCUPIED
                    return None
                ok = yield from flash.timed_program(new_pp)
                if ok:
                    break
                # Program fault burned the page; redraw from the allocator.
                self._clear_inflight(new_pp)
            if self._p2l.get(pp) != lba:
                # A concurrent host rewrite superseded this page while the
                # relocation was in flight; committing the stale copy would
                # clobber the fresh write, so the move is dropped.
                self._clear_inflight(new_pp)
                continue
            self.commit_program(lba, new_pp, gc=True)
            moved += 1
        # Erase-before-rewrite, charged to the block's home channel.
        yield from flash.channel_process(victim, cfg.erase_latency_ns)
        injector = flash.injector
        if injector is not None and injector.flash_erase_fails(victim):
            self._state[victim] = _BAD
            self.bad_blocks += 1
        else:
            self._state[victim] = _FREE
            self._free_list.append(victim)
            self.free_blocks += 1
            self.erases += 1
        self._valid[victim] = 0
        for pp in range(base, base + ppb):
            self._pages.pop(pp, None)  # stale data of burned pages
        return moved

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict[str, float]:
        """FTL counters merged into ``SsdController.stats()``."""
        return {
            "host_programs": self.host_programs,
            "gc_programs": self.gc_programs,
            "gc_reads": self.gc_reads,
            "erases": self.erases,
            "invalidations": self.invalidations,
            "live_pages": self.live_pages,
            "seeded_pages": self.seeded_pages,
            "free_blocks": self.free_blocks,
            "bad_blocks": self.bad_blocks,
            "waf": self.waf,
            "gc_runs": self.gc_runs,
            "gc_busy_ns": self.gc_busy_ns,
            "host_gc_stall_ns": self.host_gc_stall_ns,
            "host_gc_stalls": self.host_gc_stalls,
        }

    def check_conservation(self) -> None:
        """Assert the program/invalidation/live-page ledger balances (test
        and chaos-harness hook; raises :class:`SimError` on drift)."""
        expect = (
            self.host_programs
            + self.gc_programs
            + self.seeded_pages
            - self.invalidations
        )
        if expect != self.live_pages:
            raise SimError(
                f"{self.cfg.name}: FTL ledger drift: programs+seeded-"
                f"invalidations={expect} but live_pages={self.live_pages}"
            )
        by_blocks = sum(v for v in self._valid)
        if by_blocks != self.live_pages:
            raise SimError(
                f"{self.cfg.name}: per-block valid counts sum to "
                f"{by_blocks}, expected {self.live_pages}"
            )
