"""NVMe command and completion structures.

The real structures are 64-byte SQ entries and 16-byte CQ entries; the
simulator keeps those sizes for DMA timing while carrying the payload as
Python objects.  The 16-bit CID field is the key protocol element: the
paper's AGILE service uses it to pair out-of-order completions with the
submission-queue entries whose locks must be released (§3.2.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

#: Size of one submission-queue entry in bytes (NVMe spec).
SQE_SIZE = 64
#: Size of one completion-queue entry in bytes (NVMe spec).
CQE_SIZE = 16
#: CIDs are a 16-bit field in the NVMe command.
MAX_CID = 0xFFFF


class Opcode(enum.IntEnum):
    """NVM command set opcodes used in this reproduction."""

    FLUSH = 0x00
    WRITE = 0x01
    READ = 0x02


class Status(enum.IntEnum):
    """Completion status codes (generic command status subset)."""

    SUCCESS = 0x0
    INVALID_OPCODE = 0x1
    ABORTED = 0x4
    LBA_OUT_OF_RANGE = 0x80
    WRITE_FAULT = 0x280
    UNRECOVERED_READ_ERROR = 0x281


@dataclass
class NvmeCommand:
    """One submission-queue entry.

    ``data`` is the DMA target: a NumPy ``uint8`` view of simulated HBM.
    For READ the SSD writes the page there; for WRITE it reads from there.
    This stands in for the PRP/SGL physical-address lists of real NVMe.
    """

    opcode: Opcode
    cid: int
    lba: int
    num_pages: int = 1
    data: Optional[np.ndarray] = None
    #: Opaque cookie echoed to the issuer (the AGILE transaction handle).
    context: Any = None
    #: Filled in at submission time.
    sq_id: int = -1
    slot: int = -1

    def __post_init__(self) -> None:
        if not 0 <= self.cid <= MAX_CID:
            raise ValueError(f"CID {self.cid} outside the 16-bit range")
        if self.num_pages < 1:
            raise ValueError("num_pages must be >= 1")
        if self.lba < 0:
            raise ValueError("lba must be non-negative")


@dataclass(frozen=True)
class NvmeCompletion:
    """One completion-queue entry (phase bit managed by the CQ ring)."""

    cid: int
    sq_id: int
    sq_head: int
    status: Status = Status.SUCCESS
    context: Any = field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        return self.status == Status.SUCCESS
