"""NVMe substrate: commands, queue pairs, flash array, SSD controller.

Implements the protocol state machines from paper §2.1 faithfully:

- submission queues (SQ) with tail pointers, per-entry life cycle, and tail
  doorbells rung by the GPU over MMIO;
- completion queues (CQ) with phase bits, head doorbells, and SSD-side
  stalling when a CQ fills up;
- 16-bit command identifiers (CID) that pair out-of-order completions with
  their submission entries;
- an SSD controller that fetches SQEs by DMA after a doorbell, executes
  them against a channel-parallel flash array, DMAs data to/from simulated
  GPU HBM, and posts CQEs.
"""

from repro.nvme.command import (
    CQE_SIZE,
    SQE_SIZE,
    NvmeCommand,
    NvmeCompletion,
    Opcode,
    Status,
)
from repro.nvme.queue import CompletionQueue, QueuePair, SlotState, SubmissionQueue
from repro.nvme.flash import FlashArray
from repro.nvme.device import SsdController
from repro.nvme.driver import NvmeDriver

__all__ = [
    "Opcode",
    "Status",
    "NvmeCommand",
    "NvmeCompletion",
    "SQE_SIZE",
    "CQE_SIZE",
    "SlotState",
    "SubmissionQueue",
    "CompletionQueue",
    "QueuePair",
    "FlashArray",
    "SsdController",
    "NvmeDriver",
]
