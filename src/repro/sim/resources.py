"""Shared-resource models: semaphores, FIFO servers, bandwidth pipes, and a
capped processor-sharing server.

All ``acquire``/``process``/``transfer`` methods are generators intended to
be driven with ``yield from`` inside a simulation process.  A call that can
be satisfied immediately completes without yielding, so the uncontended fast
path costs zero simulated time and zero events.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.sim.engine import Event, SimError, Simulator, Timeout


class Semaphore:
    """Counting semaphore with FIFO wakeup order."""

    __slots__ = ("sim", "name", "capacity", "_in_use", "_waiters", "_ev_name")

    def __init__(self, sim: Simulator, capacity: int, name: str = "sem"):
        if capacity < 1:
            raise ValueError("semaphore capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: list[Event] = []
        # Precomputed once: blocked acquires are hot and the name is debug-only.
        self._ev_name = f"{name}.acquire"

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    def try_acquire(self) -> bool:
        """Non-blocking acquire; returns whether a token was taken."""
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            return True
        return False

    def acquire(self) -> Generator[Any, Any, None]:
        """Blocking acquire (``yield from sem.acquire()``)."""
        if self.try_acquire():
            return
        ev = Event(self.sim, name=self._ev_name)
        self._waiters.append(ev)
        yield ev

    def acquire_or_event(self) -> Optional[Event]:
        """Non-generator acquire: take a token now (returns ``None``) or
        register and return the :class:`Event` the caller must yield.

        Lets hot callers avoid a generator frame per uncontended acquire
        while producing the exact same event sequence as :meth:`acquire`.
        """
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            return None
        ev = Event(self.sim, name=self._ev_name)
        self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimError(f"semaphore {self.name!r} released too many times")
        if self._waiters:
            # Hand the token straight to the oldest waiter; _in_use unchanged.
            self._waiters.pop(0).trigger()
        else:
            self._in_use -= 1


class FifoServer:
    """Single server processing jobs one at a time in arrival order.

    ``process(service_ns)`` holds the server for exactly ``service_ns``.
    Used for strictly serialized hardware such as an SSD's command fetch
    engine or a DMA engine.
    """

    __slots__ = ("sim", "name", "_sem", "busy_time")

    def __init__(self, sim: Simulator, name: str = "server"):
        self.sim = sim
        self.name = name
        self._sem = Semaphore(sim, 1, name=f"{name}.sem")
        #: Total simulated time the server has been busy (for utilization).
        self.busy_time = 0.0

    def process(self, service_ns: float) -> Generator[Any, Any, None]:
        ev = self._sem.acquire_or_event()
        if ev is not None:
            yield ev
        try:
            if service_ns > 0:
                yield Timeout(service_ns)
            self.busy_time += service_ns
        finally:
            self._sem.release()

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the server was busy."""
        if self.sim.now <= 0:
            return 0.0
        return self.busy_time / self.sim.now


class BandwidthPipe:
    """A link with finite bandwidth and fixed propagation latency.

    Transfers serialize on the wire (store-and-forward at message
    granularity) and then experience propagation latency concurrently, the
    standard first-order PCIe/DMA model.
    """

    __slots__ = ("sim", "name", "bytes_per_ns", "latency_ns", "_server",
                 "bytes_moved")

    def __init__(
        self,
        sim: Simulator,
        bytes_per_ns: float,
        latency_ns: float = 0.0,
        name: str = "pipe",
    ):
        if bytes_per_ns <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.bytes_per_ns = bytes_per_ns
        self.latency_ns = latency_ns
        self._server = FifoServer(sim, name=f"{name}.wire")
        self.bytes_moved = 0

    def transfer(self, nbytes: int) -> Generator[Any, Any, None]:
        if nbytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        # Inlined FifoServer.process: transfers happen once per DMA burst,
        # so the delegating generator frame is measurable overhead.
        server = self._server
        service_ns = nbytes / self.bytes_per_ns
        ev = server._sem.acquire_or_event()
        if ev is not None:
            yield ev
        try:
            if service_ns > 0:
                yield Timeout(service_ns)
            server.busy_time += service_ns
        finally:
            server._sem.release()
        self.bytes_moved += nbytes
        if self.latency_ns > 0:
            yield Timeout(self.latency_ns)

    def utilization(self) -> float:
        return self._server.utilization()


class FairShareServer:
    """Capped processor-sharing server (models an SM's issue bandwidth).

    ``total_rate`` work units per ns are divided equally among the ``n``
    active jobs, but no job ever progresses faster than ``per_job_cap``
    units/ns (a single warp cannot use more than one issue slot per cycle).
    Because the cap is uniform, every active job always runs at the same
    instantaneous rate ``r(n) = min(per_job_cap, total_rate / n)``, so the
    classic virtual-time formulation applies: virtual time ``V`` advances at
    ``r(n)`` and a job with ``w`` units of work departs when ``V`` has grown
    by ``w`` since its arrival.

    Jobs live on a heap of plain ``(vfinish, seq, event)`` tuples so heap
    sifting compares in C, and the arrival/departure paths inline the
    virtual-time advance and departure rescheduling: every GPU instruction
    issue passes through here, making this the hottest model code in the
    simulator.  The inlined arithmetic is kept expression-for-expression
    identical to the readable helpers (:meth:`_rate`, :meth:`_advance`,
    :meth:`_reschedule`) so results stay bit-exact.
    """

    _EPS = 1e-9

    def __init__(
        self,
        sim: Simulator,
        total_rate: float,
        per_job_cap: Optional[float] = None,
        name: str = "ps",
    ):
        if total_rate <= 0:
            raise ValueError("total_rate must be positive")
        self.sim = sim
        self.name = name
        self.total_rate = total_rate
        self.per_job_cap = per_job_cap if per_job_cap is not None else total_rate
        self._V = 0.0
        self._last_t = 0.0
        self._jobs: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._version = 0
        self.work_done = 0.0
        self._job_name = f"{name}.job"

    @property
    def active_jobs(self) -> int:
        return len(self._jobs)

    def _rate(self) -> float:
        n = len(self._jobs)
        if n == 0:
            return 0.0
        return min(self.per_job_cap, self.total_rate / n)

    def _advance(self) -> None:
        now = self.sim.now
        dt = now - self._last_t
        if dt > 0:
            rate = self._rate()
            if rate > 0:
                self._V += dt * rate
                self.work_done += dt * rate * len(self._jobs)
        self._last_t = now

    def _reschedule(self) -> None:
        self._version += 1
        if not self._jobs:
            return
        rate = self._rate()
        dt = max(0.0, (self._jobs[0][0] - self._V) / rate)
        # Narrow scheduler API: no per-departure lambda closure.
        self.sim.schedule_at(self.sim.now + dt, self._on_departure, self._version)

    def _on_departure(self, version: int) -> None:
        if version != self._version:
            return  # superseded by a later arrival/departure
        jobs = self._jobs
        now = self.sim.now
        # _advance(), inlined.
        dt = now - self._last_t
        if dt > 0:
            n = len(jobs)
            if n:
                rate = self.total_rate / n
                cap = self.per_job_cap
                if cap < rate:
                    rate = cap
                self._V += dt * rate
                self.work_done += dt * rate * n
        self._last_t = now
        # This callback fires exactly at the head job's scheduled departure
        # (any arrival in between would have bumped the version), so if the
        # head still appears un-finished it is pure floating-point residue:
        # the real-time delay rounded down and _advance under-shot vfinish.
        # Snap virtual time forward to guarantee progress (otherwise the
        # same zero-delay callback re-fires forever).
        V = self._V
        if jobs and V < jobs[0][0]:
            V = self._V = jobs[0][0]
        lim = V + self._EPS
        ready: list[tuple[float, int, Event]] = []
        heappop = heapq.heappop
        while jobs and jobs[0][0] <= lim:
            ready.append(heappop(jobs))
        # _reschedule(), inlined.
        self._version += 1
        if jobs:
            n = len(jobs)
            rate = self.total_rate / n
            cap = self.per_job_cap
            if cap < rate:
                rate = cap
            dt = (jobs[0][0] - V) / rate
            if dt < 0.0:
                dt = 0.0
            self.sim.schedule_at(now + dt, self._on_departure, self._version)
        for job in ready:
            job[2].trigger()

    def process(self, work: float) -> Generator[Any, Any, None]:
        """Receive ``work`` units of fair-shared service."""
        if work < 0:
            raise ValueError("work must be non-negative")
        if work == 0:
            return
        sim = self.sim
        now = sim.now
        jobs = self._jobs
        # _advance(), inlined.
        dt = now - self._last_t
        if dt > 0:
            n = len(jobs)
            if n:
                rate = self.total_rate / n
                cap = self.per_job_cap
                if cap < rate:
                    rate = cap
                self._V += dt * rate
                self.work_done += dt * rate * n
        self._last_t = now
        self._seq += 1
        ev = Event(sim, name=self._job_name)
        heapq.heappush(jobs, (self._V + work, self._seq, ev))
        # _reschedule(), inlined.
        self._version += 1
        n = len(jobs)
        rate = self.total_rate / n
        cap = self.per_job_cap
        if cap < rate:
            rate = cap
        dt = (jobs[0][0] - self._V) / rate
        if dt < 0.0:
            dt = 0.0
        sim.schedule_at(now + dt, self._on_departure, self._version)
        yield ev
