"""Deterministic named random-number streams.

Every stochastic component (flash latency jitter, workload generators,
access traces) draws from its own named stream derived from the system seed,
so adding a new consumer never perturbs existing ones and every experiment
is exactly reproducible.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _stable_key(name: str) -> int:
    """Map a stream name to a stable 64-bit integer (independent of
    ``PYTHONHASHSEED``)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """Factory of independent, reproducible ``numpy`` generators."""

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created on first use)."""
        gen = self._cache.get(name)
        if gen is None:
            seq = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(_stable_key(name),)
            )
            gen = np.random.Generator(np.random.Philox(seq))
            self._cache[name] = gen
        return gen

    def fork(self, salt: int) -> "RngStreams":
        """Derive an independent family of streams (e.g. per repetition)."""
        return RngStreams((self.seed * 0x9E3779B97F4A7C15 + salt) & (2**63 - 1))
