"""Lightweight instrumentation: counters and time-weighted statistics.

The benchmark harness reads these to decompose execution time the same way
the paper's Figure 11 does (kernel time vs. cache-API time vs. I/O-API
time).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict

from repro.sim.engine import Simulator


class Counter:
    """A bag of named monotonically increasing counters."""

    def __init__(self) -> None:
        self._values: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        self._values[name] += amount

    def get(self, name: str, default: float = 0.0) -> float:
        return self._values.get(name, default)

    def snapshot(self) -> Dict[str, float]:
        return dict(self._values)

    def reset(self) -> None:
        self._values.clear()

    def __getitem__(self, name: str) -> float:
        return self.get(name)


class TimeWeightedStat:
    """Integrates a piecewise-constant value over simulated time.

    ``mean()`` gives the time-average — used for average queue occupancy and
    cache residency statistics.
    """

    def __init__(self, sim: Simulator, initial: float = 0.0):
        self.sim = sim
        self._value = initial
        self._last_t = sim.now
        self._area = 0.0
        self._max = initial

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self.sim.now
        self._area += self._value * (now - self._last_t)
        self._last_t = now
        self._value = value
        if value > self._max:
            self._max = value

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    def mean(self) -> float:
        now = self.sim.now
        total = self._area + self._value * (now - self._last_t)
        if now <= 0:
            return self._value
        return total / now

    def maximum(self) -> float:
        return self._max


class TraceRecorder:
    """Central registry of counters grouped by component name."""

    def __init__(self) -> None:
        self._groups: Dict[str, Counter] = {}

    def group(self, name: str) -> Counter:
        counter = self._groups.get(name)
        if counter is None:
            counter = Counter()
            self._groups[name] = counter
        return counter

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {name: c.snapshot() for name, c in self._groups.items()}

    def reset(self) -> None:
        for counter in self._groups.values():
            counter.reset()
