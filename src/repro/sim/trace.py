"""Lightweight instrumentation: counters, time-weighted statistics, and the
structured protocol event log.

The benchmark harness reads the counters to decompose execution time the
same way the paper's Figure 11 does (kernel time vs. cache-API time vs.
I/O-API time).  The :class:`EventLog` is the substrate of the
:mod:`repro.analysis` layer: models emit protocol-level events (queue slot
transitions, doorbell rings, lock operations, cache-line state changes)
into an attached log, where runtime invariant checkers subscribe and
offline analyzers replay the recorded stream after the run.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Callable, Dict, Iterator, Optional

from repro.sim.engine import Simulator


class Counter:
    """A bag of named monotonically increasing counters."""

    def __init__(self) -> None:
        self._values: Dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        self._values[name] += amount

    def get(self, name: str, default: float = 0.0) -> float:
        return self._values.get(name, default)

    def snapshot(self) -> Dict[str, float]:
        return dict(self._values)

    def reset(self) -> None:
        self._values.clear()

    def __getitem__(self, name: str) -> float:
        return self.get(name)


class TimeWeightedStat:
    """Integrates a piecewise-constant value over simulated time.

    ``mean()`` gives the time-average — used for average queue occupancy and
    cache residency statistics.
    """

    def __init__(self, sim: Simulator, initial: float = 0.0):
        self.sim = sim
        self._value = initial
        self._last_t = sim.now
        self._area = 0.0
        self._max = initial

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self.sim.now
        self._area += self._value * (now - self._last_t)
        self._last_t = now
        self._value = value
        if value > self._max:
            self._max = value

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    def mean(self) -> float:
        now = self.sim.now
        total = self._area + self._value * (now - self._last_t)
        if now <= 0:
            return self._value
        return total / now

    def maximum(self) -> float:
        return self._max


class TraceEvent:
    """One structured protocol event: simulated time, kind, payload."""

    __slots__ = ("t", "kind", "data")

    def __init__(self, t: float, kind: str, data: Dict[str, Any]):
        self.t = t
        self.kind = kind
        self.data = data

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        fields = ", ".join(
            f"{k}={v!r}" for k, v in self.data.items() if k != "src"
        )
        return f"TraceEvent(t={self.t:.0f}, {self.kind}, {fields})"


class EventLog:
    """Ordered stream of :class:`TraceEvent` with synchronous subscribers.

    Models hold an optional ``log`` attribute (``None`` by default, so the
    emit sites cost one attribute check when analysis is off).  Subscribers
    run inline at emit time: an invariant checker that raises makes the
    violating model call fail loudly at the exact simulated instant of the
    violation.  The retained deque feeds the offline analyzers
    (:mod:`repro.analysis.races`).
    """

    def __init__(self, sim: Simulator, maxlen: Optional[int] = 1_000_000):
        self.sim = sim
        self._records: deque[TraceEvent] = deque(maxlen=maxlen)
        self._subscribers: list[Callable[[TraceEvent], None]] = []
        self.emitted = 0

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        self._subscribers.append(fn)

    def emit(self, kind: str, **data: Any) -> None:
        event = TraceEvent(self.sim.now, kind, data)
        self._records.append(event)
        self.emitted += 1
        for fn in self._subscribers:
            fn(event)

    def events(self, kind: Optional[str] = None) -> Iterator[TraceEvent]:
        """Iterate retained events, optionally filtered by kind prefix."""
        for event in self._records:
            if kind is None or event.kind.startswith(kind):
                yield event

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)


class TraceRecorder:
    """Central registry of counters grouped by component name."""

    def __init__(self) -> None:
        self._groups: Dict[str, Counter] = {}

    def group(self, name: str) -> Counter:
        counter = self._groups.get(name)
        if counter is None:
            counter = Counter()
            self._groups[name] = counter
        return counter

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {name: c.snapshot() for name, c in self._groups.items()}

    def reset(self) -> None:
        for counter in self._groups.values():
            counter.reset()
