"""The structured protocol event log, plus back-compat re-exports of the
metric types that moved to :mod:`repro.telemetry`.

Counters, gauges, and the registry now live in the telemetry spine
(:mod:`repro.telemetry`); :class:`Counter`, :class:`TimeWeightedStat`, and
:class:`TraceRecorder` are kept importable from here so existing call
sites and downstream users keep working — ``TraceRecorder`` is the
registry itself, restricted to the historical counters-only ``snapshot()``
shape that ``host.stats()`` guarantees.

The :class:`EventLog` remains the substrate of the :mod:`repro.analysis`
layer: models emit protocol-level events (queue slot transitions, doorbell
rings, lock operations, cache-line state changes) into an attached log,
where runtime invariant checkers subscribe and offline analyzers replay
the recorded stream after the run.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Iterator, Optional

from repro.sim.engine import Simulator
from repro.telemetry.metrics import Counter, TimeWeightedStat
from repro.telemetry.registry import MetricRegistry

__all__ = [
    "Counter",
    "EventLog",
    "TimeWeightedStat",
    "TraceEvent",
    "TraceRecorder",
]


class TraceEvent:
    """One structured protocol event: simulated time, kind, payload."""

    __slots__ = ("t", "kind", "data")

    def __init__(self, t: float, kind: str, data: Dict[str, Any]):
        self.t = t
        self.kind = kind
        self.data = data

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.data.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        fields = ", ".join(
            f"{k}={v!r}" for k, v in self.data.items() if k != "src"
        )
        return f"TraceEvent(t={self.t:.0f}, {self.kind}, {fields})"


class EventLog:
    """Ordered stream of :class:`TraceEvent` with synchronous subscribers.

    Models hold an optional ``log`` attribute (``None`` by default, so the
    emit sites cost one attribute check when analysis is off).  Subscribers
    run inline at emit time: an invariant checker that raises makes the
    violating model call fail loudly at the exact simulated instant of the
    violation.  The retained deque feeds the offline analyzers
    (:mod:`repro.analysis.races`).
    """

    def __init__(self, sim: Simulator, maxlen: Optional[int] = 1_000_000):
        self.sim = sim
        self._records: deque[TraceEvent] = deque(maxlen=maxlen)
        self._subscribers: list[Callable[[TraceEvent], None]] = []
        self.emitted = 0

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        self._subscribers.append(fn)

    def emit(self, kind: str, **data: Any) -> None:
        event = TraceEvent(self.sim.now, kind, data)
        self._records.append(event)
        self.emitted += 1
        for fn in self._subscribers:
            fn(event)

    def events(self, kind: Optional[str] = None) -> Iterator[TraceEvent]:
        """Iterate retained events, optionally filtered by kind prefix."""
        for event in self._records:
            if kind is None or event.kind.startswith(kind):
                yield event

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)


class TraceRecorder(MetricRegistry):
    """The host's metric registry, with the historical counters-only API.

    ``group(name)`` is ``counter(name)`` with an open label set, and
    ``snapshot()`` keeps the pre-telemetry ``{group: {key: value}}`` shape
    that ``host.stats()`` and the workloads/benchmarks rely on.  The full
    typed surface (gauges, histograms, pull collectors,
    ``full_snapshot()``) is inherited from
    :class:`repro.telemetry.MetricRegistry`.
    """

    def group(self, name: str) -> Counter:
        return self.counter(name)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return self.counters_snapshot()

    def full_snapshot(self) -> Dict[str, Any]:
        return MetricRegistry.snapshot(self)
