"""Core event loop, processes, events, and timeouts.

Times are floats in nanoseconds.  Ties are broken by a monotonically
increasing sequence number, making runs bit-deterministic.

Scheduling is two-tiered (the dispatch fast path):

- an **immediate FIFO deque** holds every ``delay == 0.0`` schedule — the
  overwhelmingly common case (process resumes, event wakeups, cooperative
  re-schedules).  Appending to and popping from a deque is O(1) with no
  comparison work.
- a **timeout heap** keyed by ``(time, seq)`` holds only true timeouts and
  absolute-time callbacks.

Both tiers share one global sequence counter, and the dispatcher always
pops whichever front has the smaller ``(time, seq)``, so the merged order
is bit-identical to the classic single-heap formulation: among events at
the same timestamp, schedule order wins (FIFO).  The immediate queue is
drained before simulated time may advance.

Dispatch is allocation-free on the fast path: instead of a fresh closure
per step, each :class:`Process` owns one reusable ``[seq, kind, target,
payload]`` dispatch record that is mutated in place and appended to the
queue.  Raw callbacks go through the narrow scheduler-facing API —
:meth:`Simulator.schedule_immediate` / :meth:`Simulator.schedule_at` —
which takes ``fn, *args`` so callers never need to build a ``lambda``.

Deadlock handling is first-class because the paper's motivating bug
(Figure 1) *is* a deadlock: the engine detects both global deadlock (event
queues empty while non-daemon processes still wait) and stalls (no
non-daemon process has advanced for ``watchdog_ns`` of simulated time
while daemons keep the queues warm), and reports which processes are
stuck on what.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

SimGenerator = Generator[Any, Any, Any]

#: Dispatch-record kinds.  A record is ``[seq, kind, target, payload]``:
#: SEND/THROW target a :class:`Process` (resume value / exception in the
#: payload slot); CALL targets a plain callable with an argument tuple.
_K_SEND = 0
_K_THROW = 1
_K_CALL = 2


class SimError(RuntimeError):
    """Base class for simulation errors."""


class SimDeadlockError(SimError):
    """Raised when no events remain but non-daemon processes still wait."""


class SimStallError(SimError):
    """Raised when the watchdog sees no non-daemon progress for too long."""


class Timeout:
    """Awaitable delay.  ``yield Timeout(dt)`` resumes ``dt`` ns later."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = delay
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay})"


class Event:
    """One-shot event.  Processes yielding an untriggered event block until
    :meth:`trigger` (resumed with the trigger value) or :meth:`fail` (the
    exception is thrown into the waiting generator).

    Yielding an already-triggered event resumes immediately — this makes
    "maybe already done" barriers (e.g. AGILE transaction barriers) natural.
    """

    __slots__ = ("sim", "name", "_waiters", "_triggered", "_value", "_exc")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._waiters: list[Process] = []
        self._triggered = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True once triggered successfully (not failed)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimError(f"event {self.name!r} not yet triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    def trigger(self, value: Any = None) -> None:
        if self._triggered:
            raise SimError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters = self._waiters
        if waiters:
            # Batched wakeup: enqueue every waiter's dispatch record in one
            # pass (schedule order == waiter registration order, matching
            # the historical per-waiter _schedule semantics).
            sim = self.sim
            imm = sim._immediate
            seq = sim._seq
            for proc in waiters:
                proc._waiting_on = None
                seq += 1
                if proc._rec_queued:
                    imm.append([seq, _K_SEND, proc, value])
                else:
                    rec = proc._record
                    rec[0] = seq
                    rec[1] = _K_SEND
                    rec[3] = value
                    proc._rec_queued = True
                    imm.append(rec)
            sim._seq = seq
            self._waiters = []

    def fail(self, exc: BaseException) -> None:
        if self._triggered:
            raise SimError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._exc = exc
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._schedule_throw(exc)

    def _add_waiter(self, proc: "Process") -> None:
        if self._triggered:
            if self._exc is not None:
                proc._schedule_throw(self._exc)
            else:
                proc._schedule_resume(self._value)
        else:
            self._waiters.append(proc)
            proc._waiting_on = self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"Event({self.name!r}, {state})"


class Process:
    """A running simulation process wrapping a generator.

    Yield targets: :class:`Timeout`, :class:`Event`, another
    :class:`Process` (join), or ``None`` (yield the engine, resume at the
    same timestamp after other pending events — a cooperative re-schedule).
    """

    __slots__ = (
        "sim",
        "name",
        "daemon",
        "_gen",
        "alive",
        "_done_event",
        "value",
        "_waiting_on",
        "_record",
        "_rec_queued",
    )

    def __init__(
        self,
        sim: "Simulator",
        gen: SimGenerator,
        name: str = "proc",
        daemon: bool = False,
    ):
        self.sim = sim
        self.name = name
        self.daemon = daemon
        self._gen = gen
        self.alive = True
        self.value: Any = None
        self._done_event = Event(sim, name=f"{name}.done")
        self._waiting_on: Any = None
        #: Reusable dispatch record.  A process has at most one pending
        #: resume at a time, so the same list is mutated and re-enqueued
        #: for every step; ``_rec_queued`` guards the rare overlap.
        self._record: list = [0, _K_SEND, self, None]
        self._rec_queued = False

    # -- engine plumbing ---------------------------------------------------

    def _enqueue(self, kind: int, payload: Any, delay: float = 0.0) -> None:
        """Queue this process's next step (record reuse fast path)."""
        sim = self.sim
        sim._seq += 1
        if self._rec_queued:
            rec = [sim._seq, kind, self, payload]
        else:
            rec = self._record
            rec[0] = sim._seq
            rec[1] = kind
            rec[3] = payload
            self._rec_queued = True
        if delay == 0.0:
            sim._immediate.append(rec)
        else:
            heapq.heappush(sim._heap, (sim.now + delay, rec[0], rec))

    def _schedule_resume(self, value: Any) -> None:
        self._waiting_on = None
        self._enqueue(_K_SEND, value)

    def _schedule_throw(self, exc: BaseException) -> None:
        self._waiting_on = None
        self._enqueue(_K_THROW, exc)

    def _step_send(self, value: Any) -> None:
        if not self.alive:
            return
        if not self.daemon:
            self.sim._last_progress = self.sim.now
        try:
            item = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:
            self._finish_error(exc)
            return
        # The two overwhelmingly common yields — Timeout and a pending
        # Event — are handled inline; everything else falls through to
        # _dispatch.  Same behaviour, one less call per step.
        if type(item) is Timeout:
            self._waiting_on = item
            self._enqueue(_K_SEND, item.value, item.delay)
        elif isinstance(item, Event) and not item._triggered:
            item._waiters.append(self)
            self._waiting_on = item
        else:
            self._dispatch(item)

    def _step_throw(self, exc: BaseException) -> None:
        if not self.alive:
            return
        if not self.daemon:
            self.sim._last_progress = self.sim.now
        try:
            item = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as err:
            self._finish_error(err)
            return
        if type(item) is Timeout:
            self._waiting_on = item
            self._enqueue(_K_SEND, item.value, item.delay)
        elif isinstance(item, Event) and not item._triggered:
            item._waiters.append(self)
            self._waiting_on = item
        else:
            self._dispatch(item)

    def _dispatch(self, item: Any) -> None:
        if item is None:
            self._enqueue(_K_SEND, None)
        elif type(item) is Timeout:
            self._waiting_on = item
            self._enqueue(_K_SEND, item.value, item.delay)
        elif isinstance(item, Event):
            item._add_waiter(self)
        elif isinstance(item, Process):
            item._done_event._add_waiter(self)
            if self._waiting_on is not None:
                # Still blocked: report the join target, not its done-event.
                self._waiting_on = item
        else:
            exc = SimError(
                f"process {self.name!r} yielded unsupported object {item!r}"
            )
            self._finish_error(exc)

    def _finish(self, value: Any) -> None:
        self.alive = False
        self.value = value
        self.sim._proc_finished(self)
        self._done_event.trigger(value)

    def _finish_error(self, exc: BaseException) -> None:
        self.alive = False
        self.sim._proc_finished(self)
        if self._done_event._waiters:
            self._done_event.fail(exc)
        else:
            # No joiner: surface the failure from the event loop itself.
            self.sim._crash(exc, self)

    # -- public API ----------------------------------------------------------

    @property
    def done_event(self) -> Event:
        """Event triggered with the process return value on completion."""
        return self._done_event

    def kill(self) -> None:
        """Terminate the process immediately (used to stop daemons)."""
        if not self.alive:
            return
        self.alive = False
        self._gen.close()
        self.sim._proc_finished(self)
        if not self._done_event.triggered:
            self._done_event.trigger(None)

    def waiting_description(self) -> str:
        """Human-readable description of what this process is blocked on."""
        target = self._waiting_on
        if target is None:
            return "runnable"
        if isinstance(target, Event):
            return f"event {target.name!r}"
        if isinstance(target, Timeout):
            return f"timeout {target.delay} ns"
        if isinstance(target, Process):
            return f"joining process '{target.name}'"
        return repr(target)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        p = sim.spawn(my_generator(), name="worker")
        sim.run()             # until no non-daemon work remains
        print(sim.now, p.value)
    """

    def __init__(self, watchdog_ns: float = 0.0):
        self.now: float = 0.0
        #: FIFO of dispatch records scheduled at the current time.
        self._immediate: deque[list] = deque()
        #: True timeouts only: ``(time, seq, record)``.
        self._heap: list[tuple[float, int, list]] = []
        self._seq = 0
        self._alive_nondaemon = 0
        self._alive: set[Process] = set()
        self._last_progress = 0.0
        #: Simulated ns of daemon-only activity tolerated before declaring a
        #: stall.  0 disables the watchdog.
        self.watchdog_ns = watchdog_ns
        self._crashed: Optional[tuple[BaseException, Process]] = None
        #: Lifetime total of dispatched events (across all run() calls).
        self.event_count = 0
        self._raw_pending = 0
        #: Alive targets of the current bounded run() call, maintained by
        #: _proc_finished so the hot loop never rescans the target list.
        self._run_targets: Optional[set[Process]] = None
        #: Optional :class:`repro.telemetry.Telemetry` session (duck-typed;
        #: the engine never imports the telemetry package).  While None —
        #: the default — run() records nothing.
        self.telemetry = None

    # -- scheduling ----------------------------------------------------------

    def schedule_immediate(self, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at the current simulated time, after every
        already-queued same-time event (FIFO).

        This is the scheduler-facing API for model code: no closure needed —
        pass the callable and its arguments.  Raw callbacks count as pending
        work: ``run()`` will not declare the simulation finished while any
        are outstanding.
        """
        self._raw_pending += 1
        self._seq += 1
        self._immediate.append([self._seq, _K_CALL, fn, args])

    def schedule_at(
        self, when: float, fn: Callable[..., None], *args: Any
    ) -> None:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``.

        Like :meth:`schedule_immediate`, raw callbacks count as pending work
        (e.g. an in-flight doorbell value that has not yet reached the SSD).
        """
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        self._raw_pending += 1
        self._seq += 1
        if when == self.now:
            self._immediate.append([self._seq, _K_CALL, fn, args])
        else:
            heapq.heappush(self._heap, (when, self._seq, [self._seq, _K_CALL, fn, args]))

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Back-compat alias for :meth:`schedule_at` without arguments."""
        self.schedule_at(when, fn)

    def _note_progress(self) -> None:
        self._last_progress = self.now

    def _crash(self, exc: BaseException, proc: Process) -> None:
        if self._crashed is None:
            self._crashed = (exc, proc)

    def _proc_finished(self, proc: Process) -> None:
        self._alive.discard(proc)
        if not proc.daemon:
            self._alive_nondaemon -= 1
        if self._run_targets is not None:
            self._run_targets.discard(proc)

    # -- process management ---------------------------------------------------

    def spawn(
        self, gen: SimGenerator, name: str = "proc", daemon: bool = False
    ) -> Process:
        """Create a process from a generator and schedule its first step."""
        proc = Process(self, gen, name=name, daemon=daemon)
        self._alive.add(proc)
        if not daemon:
            self._alive_nondaemon += 1
        proc._enqueue(_K_SEND, None)
        return proc

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(delay, value)

    # -- running ---------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        until_procs: Optional[Iterable[Process]] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Drive the event loop.

        Stops when: all non-daemon processes finish; simulated time reaches
        ``until``; all of ``until_procs`` complete; or ``max_events`` events
        have been processed *by this call* (``event_count`` stays the
        lifetime total).  Raises :class:`SimDeadlockError` if the queues
        drain while non-daemon processes still wait, and
        :class:`SimStallError` if the watchdog fires.
        """
        targets: Optional[set[Process]] = None
        if until_procs is not None:
            targets = {p for p in until_procs if p.alive}
        self._run_targets = targets
        tel = self.telemetry
        if tel is not None:
            span_t0 = self.now
            span_e0 = self.event_count
        try:
            self._run(until, targets, max_events)
        finally:
            self._run_targets = None
            if tel is not None:
                # Passive span append — never a scheduled event, so the
                # dispatched stream is identical with telemetry off.
                tel.spans.complete(
                    "sim.run", "sim", "scheduler", span_t0, self.now,
                    events=self.event_count - span_e0,
                )

    def _run(
        self,
        until: Optional[float],
        targets: Optional[set[Process]],
        max_events: Optional[int],
    ) -> None:
        imm = self._immediate
        heap = self._heap
        heappop = heapq.heappop
        watchdog = self.watchdog_ns
        processed = 0
        now = self.now
        while imm or heap:
            if self._crashed is not None:
                exc, proc = self._crashed
                self._crashed = None
                raise SimError(
                    f"process {proc.name!r} died with an unhandled error"
                ) from exc
            if targets is not None:
                if not targets:
                    return
            elif self._alive_nondaemon == 0 and self._raw_pending == 0:
                return
            # Pop whichever front has the smaller (time, seq).  Immediate
            # records carry the current timestamp, so only a heap entry that
            # already expired (time == now) with an older seq can precede
            # them; the immediate tier is always drained before time moves.
            from_heap = True
            if imm:
                rec = imm[0]
                if heap and heap[0][0] <= now and heap[0][1] < rec[0]:
                    when, _, rec = heappop(heap)
                else:
                    imm.popleft()
                    when = now
                    from_heap = False
            else:
                when, _, rec = heappop(heap)
            if until is not None and when > until:
                # Put it back; we stop exactly at the horizon.
                if from_heap:
                    heapq.heappush(heap, (when, rec[0], rec))
                else:
                    imm.appendleft(rec)
                self.now = until
                return
            self.now = now = when
            if (
                watchdog > 0
                and self._alive_nondaemon > 0
                and when - self._last_progress > watchdog
            ):
                raise SimStallError(self._stall_report())
            kind = rec[1]
            if kind == _K_SEND:
                target = rec[2]
                payload = rec[3]
                if rec is target._record:
                    target._rec_queued = False
                    rec[3] = None
                target._step_send(payload)
            elif kind == _K_CALL:
                self._raw_pending -= 1
                rec[2](*rec[3])
            else:
                target = rec[2]
                payload = rec[3]
                if rec is target._record:
                    target._rec_queued = False
                    rec[3] = None
                target._step_throw(payload)
            self.event_count += 1
            if max_events is not None:
                processed += 1
                if processed >= max_events:
                    return
        if self._crashed is not None:
            exc, proc = self._crashed
            self._crashed = None
            raise SimError(
                f"process {proc.name!r} died with an unhandled error"
            ) from exc
        if targets:
            raise SimDeadlockError(self._stall_report())
        if self._alive_nondaemon > 0:
            raise SimDeadlockError(self._stall_report())

    def _stall_report(self) -> str:
        stuck = [
            f"  {p.name}: waiting on {p.waiting_description()}"
            for p in sorted(self._alive, key=lambda p: p.name)
            if p.alive and not p.daemon
        ]
        header = (
            f"simulation made no non-daemon progress "
            f"(t={self.now:.0f} ns, last progress at "
            f"{self._last_progress:.0f} ns); blocked processes:"
        )
        return "\n".join([header] + (stuck or ["  (none alive)"]))
