"""Core event loop, processes, events, and timeouts.

Times are floats in nanoseconds.  Ties are broken by a monotonically
increasing sequence number, making runs bit-deterministic.

Deadlock handling is first-class because the paper's motivating bug
(Figure 1) *is* a deadlock: the engine detects both global deadlock (event
heap empty while non-daemon processes still wait) and stalls (no non-daemon
process has advanced for ``watchdog_ns`` of simulated time while daemons
keep the heap warm), and reports which processes are stuck on what.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

SimGenerator = Generator[Any, Any, Any]


class SimError(RuntimeError):
    """Base class for simulation errors."""


class SimDeadlockError(SimError):
    """Raised when no events remain but non-daemon processes still wait."""


class SimStallError(SimError):
    """Raised when the watchdog sees no non-daemon progress for too long."""


class Timeout:
    """Awaitable delay.  ``yield Timeout(dt)`` resumes ``dt`` ns later."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = delay
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay})"


class Event:
    """One-shot event.  Processes yielding an untriggered event block until
    :meth:`trigger` (resumed with the trigger value) or :meth:`fail` (the
    exception is thrown into the waiting generator).

    Yielding an already-triggered event resumes immediately — this makes
    "maybe already done" barriers (e.g. AGILE transaction barriers) natural.
    """

    __slots__ = ("sim", "name", "_waiters", "_triggered", "_value", "_exc")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self._waiters: list[Process] = []
        self._triggered = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True once triggered successfully (not failed)."""
        return self._triggered and self._exc is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimError(f"event {self.name!r} not yet triggered")
        if self._exc is not None:
            raise self._exc
        return self._value

    def trigger(self, value: Any = None) -> None:
        if self._triggered:
            raise SimError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._schedule_resume(value)

    def fail(self, exc: BaseException) -> None:
        if self._triggered:
            raise SimError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._exc = exc
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._schedule_throw(exc)

    def _add_waiter(self, proc: "Process") -> None:
        if self._triggered:
            if self._exc is not None:
                proc._schedule_throw(self._exc)
            else:
                proc._schedule_resume(self._value)
        else:
            self._waiters.append(proc)
            proc._waiting_on = self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"Event({self.name!r}, {state})"


class Process:
    """A running simulation process wrapping a generator.

    Yield targets: :class:`Timeout`, :class:`Event`, another
    :class:`Process` (join), or ``None`` (yield the engine, resume at the
    same timestamp after other pending events — a cooperative re-schedule).
    """

    __slots__ = (
        "sim",
        "name",
        "daemon",
        "_gen",
        "alive",
        "_done_event",
        "value",
        "_waiting_on",
    )

    def __init__(
        self,
        sim: "Simulator",
        gen: SimGenerator,
        name: str = "proc",
        daemon: bool = False,
    ):
        self.sim = sim
        self.name = name
        self.daemon = daemon
        self._gen = gen
        self.alive = True
        self.value: Any = None
        self._done_event = Event(sim, name=f"{name}.done")
        self._waiting_on: Any = None

    # -- engine plumbing ---------------------------------------------------

    def _schedule_resume(self, value: Any) -> None:
        self._waiting_on = None
        self.sim._schedule(0.0, lambda: self._step_send(value))

    def _schedule_throw(self, exc: BaseException) -> None:
        self._waiting_on = None
        self.sim._schedule(0.0, lambda: self._step_throw(exc))

    def _step_send(self, value: Any) -> None:
        if not self.alive:
            return
        if not self.daemon:
            self.sim._note_progress()
        try:
            item = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:
            self._finish_error(exc)
            return
        self._dispatch(item)

    def _step_throw(self, exc: BaseException) -> None:
        if not self.alive:
            return
        if not self.daemon:
            self.sim._note_progress()
        try:
            item = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as err:
            self._finish_error(err)
            return
        self._dispatch(item)

    def _dispatch(self, item: Any) -> None:
        sim = self.sim
        if item is None:
            sim._schedule(0.0, lambda: self._step_send(None))
        elif type(item) is Timeout:
            self._waiting_on = item
            sim._schedule(item.delay, lambda: self._step_send(item.value))
        elif isinstance(item, Event):
            item._add_waiter(self)
        elif isinstance(item, Process):
            item._done_event._add_waiter(self)
        else:
            exc = SimError(
                f"process {self.name!r} yielded unsupported object {item!r}"
            )
            self._finish_error(exc)

    def _finish(self, value: Any) -> None:
        self.alive = False
        self.value = value
        self.sim._proc_finished(self)
        self._done_event.trigger(value)

    def _finish_error(self, exc: BaseException) -> None:
        self.alive = False
        self.sim._proc_finished(self)
        if self._done_event._waiters:
            self._done_event.fail(exc)
        else:
            # No joiner: surface the failure from the event loop itself.
            self.sim._crash(exc, self)

    # -- public API ----------------------------------------------------------

    @property
    def done_event(self) -> Event:
        """Event triggered with the process return value on completion."""
        return self._done_event

    def kill(self) -> None:
        """Terminate the process immediately (used to stop daemons)."""
        if not self.alive:
            return
        self.alive = False
        self._gen.close()
        self.sim._proc_finished(self)
        if not self._done_event.triggered:
            self._done_event.trigger(None)

    def waiting_description(self) -> str:
        """Human-readable description of what this process is blocked on."""
        target = self._waiting_on
        if target is None:
            return "runnable"
        if isinstance(target, Event):
            return f"event {target.name!r}"
        if isinstance(target, Timeout):
            return f"timeout {target.delay} ns"
        return repr(target)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """The event loop.

    Typical use::

        sim = Simulator()
        p = sim.spawn(my_generator(), name="worker")
        sim.run()             # until no non-daemon work remains
        print(sim.now, p.value)
    """

    def __init__(self, watchdog_ns: float = 0.0):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._alive_nondaemon = 0
        self._alive: set[Process] = set()
        self._last_progress = 0.0
        #: Simulated ns of daemon-only activity tolerated before declaring a
        #: stall.  0 disables the watchdog.
        self.watchdog_ns = watchdog_ns
        self._crashed: Optional[tuple[BaseException, Process]] = None
        self.event_count = 0
        self._raw_pending = 0

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, delay: float, fn: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))

    def call_at(self, when: float, fn: Callable[[], None]) -> None:
        """Schedule a raw callback at absolute simulated time ``when``.

        Raw callbacks count as pending work: ``run()`` will not declare the
        simulation finished while any are outstanding (e.g. an in-flight
        doorbell value that has not yet reached the SSD).
        """
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        self._raw_pending += 1

        def wrapped() -> None:
            self._raw_pending -= 1
            fn()

        self._schedule(when - self.now, wrapped)

    def _note_progress(self) -> None:
        self._last_progress = self.now

    def _crash(self, exc: BaseException, proc: Process) -> None:
        if self._crashed is None:
            self._crashed = (exc, proc)

    def _proc_finished(self, proc: Process) -> None:
        self._alive.discard(proc)
        if not proc.daemon:
            self._alive_nondaemon -= 1

    # -- process management ---------------------------------------------------

    def spawn(
        self, gen: SimGenerator, name: str = "proc", daemon: bool = False
    ) -> Process:
        """Create a process from a generator and schedule its first step."""
        proc = Process(self, gen, name=name, daemon=daemon)
        self._alive.add(proc)
        if not daemon:
            self._alive_nondaemon += 1
        self._schedule(0.0, lambda: proc._step_send(None))
        return proc

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(delay, value)

    # -- running ---------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        until_procs: Optional[Iterable[Process]] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Drive the event loop.

        Stops when: all non-daemon processes finish; simulated time reaches
        ``until``; all of ``until_procs`` complete; or ``max_events`` events
        have been processed.  Raises :class:`SimDeadlockError` if the heap
        drains while non-daemon processes still wait, and
        :class:`SimStallError` if the watchdog fires.
        """
        targets = list(until_procs) if until_procs is not None else None
        heap = self._heap
        while heap:
            if self._crashed is not None:
                exc, proc = self._crashed
                self._crashed = None
                raise SimError(
                    f"process {proc.name!r} died with an unhandled error"
                ) from exc
            if targets is not None and all(not p.alive for p in targets):
                return
            if (
                targets is None
                and self._alive_nondaemon == 0
                and self._raw_pending == 0
            ):
                return
            when, _, fn = heapq.heappop(heap)
            if until is not None and when > until:
                # Put it back; we stop exactly at the horizon.
                heapq.heappush(heap, (when, _, fn))
                self.now = until
                return
            self.now = when
            if (
                self.watchdog_ns > 0
                and self._alive_nondaemon > 0
                and self.now - self._last_progress > self.watchdog_ns
            ):
                raise SimStallError(self._stall_report())
            fn()
            self.event_count += 1
            if max_events is not None and self.event_count >= max_events:
                return
        if self._crashed is not None:
            exc, proc = self._crashed
            self._crashed = None
            raise SimError(
                f"process {proc.name!r} died with an unhandled error"
            ) from exc
        if targets is not None and any(p.alive for p in targets):
            raise SimDeadlockError(self._stall_report())
        if self._alive_nondaemon > 0:
            raise SimDeadlockError(self._stall_report())

    def _stall_report(self) -> str:
        stuck = [
            f"  {p.name}: waiting on {p.waiting_description()}"
            for p in sorted(self._alive, key=lambda p: p.name)
            if p.alive and not p.daemon
        ]
        header = (
            f"simulation made no non-daemon progress "
            f"(t={self.now:.0f} ns, last progress at "
            f"{self._last_progress:.0f} ns); blocked processes:"
        )
        return "\n".join([header] + (stuck or ["  (none alive)"]))
