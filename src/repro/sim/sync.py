"""Synchronization primitives layered on the engine: mutex, gate, barrier."""

from __future__ import annotations

from typing import Any, Generator, Hashable, Optional

from repro.sim.engine import Event, SimError, Simulator


class SimLock:
    """FIFO mutex with owner tracking.

    Unlike :class:`~repro.sim.resources.Semaphore`, a lock remembers *who*
    holds it, which the AGILE lock-chain deadlock detector (paper §3.5)
    needs in order to build the waits-for graph.
    """

    __slots__ = ("sim", "name", "owner", "_waiters", "_ev_name")

    def __init__(self, sim: Simulator, name: str = "lock"):
        self.sim = sim
        self.name = name
        self.owner: Optional[Hashable] = None
        self._waiters: list[tuple[Hashable, Event]] = []
        # Precomputed once: contended acquires are hot, names are debug-only.
        self._ev_name = f"{name}.acquire"

    @property
    def locked(self) -> bool:
        return self.owner is not None

    def try_acquire(self, who: Hashable) -> bool:
        if self.owner is None and not self._waiters:
            self.owner = who
            return True
        return False

    def acquire(self, who: Hashable) -> Generator[Any, Any, None]:
        if self.try_acquire(who):
            return
        if self.owner == who:
            raise SimError(f"{who!r} re-acquired non-reentrant lock {self.name!r}")
        ev = Event(self.sim, name=self._ev_name)
        self._waiters.append((who, ev))
        yield ev

    def release(self, who: Hashable) -> None:
        if self.owner != who:
            raise SimError(
                f"{who!r} released lock {self.name!r} owned by {self.owner!r}"
            )
        if self._waiters:
            next_who, ev = self._waiters.pop(0)
            self.owner = next_who
            ev.trigger()
        else:
            self.owner = None

    def waiters(self) -> list[Hashable]:
        """Identities currently queued on this lock (for deadlock reports)."""
        return [who for who, _ in self._waiters]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimLock({self.name!r}, owner={self.owner!r})"


class Gate:
    """Level-triggered event: processes wait until the gate is open.

    Re-usable, unlike :class:`~repro.sim.engine.Event`: the gate can be
    closed again, and waiters arriving while it is open pass through without
    blocking.  Used for cache-line READY notifications and transaction
    barriers that are polled repeatedly.
    """

    __slots__ = ("sim", "name", "_open", "_waiters", "_ev_name")

    def __init__(self, sim: Simulator, is_open: bool = False, name: str = "gate"):
        self.sim = sim
        self.name = name
        self._open = is_open
        self._waiters: list[Event] = []
        self._ev_name = f"{name}.wait"

    @property
    def is_open(self) -> bool:
        return self._open

    def open(self) -> None:
        """Open the gate and release every waiter."""
        self._open = True
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.trigger()

    def close(self) -> None:
        self._open = False

    def wait(self) -> Generator[Any, Any, None]:
        if self._open:
            return
        ev = Event(self.sim, name=self._ev_name)
        self._waiters.append(ev)
        yield ev


class Barrier:
    """Classic n-party barrier: the n-th arrival releases everyone.

    Reusable across generations, mirroring ``__syncwarp``/``__syncthreads``
    semantics for the simulated warp lockstep points.
    """

    __slots__ = ("sim", "name", "parties", "_count", "_generation", "_event")

    def __init__(self, sim: Simulator, parties: int, name: str = "barrier"):
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.sim = sim
        self.name = name
        self.parties = parties
        self._count = 0
        self._generation = 0
        self._event = sim.event(name=f"{name}.gen0")

    def wait(self) -> Generator[Any, Any, int]:
        """Block until all parties arrive; returns the generation index."""
        gen = self._generation
        self._count += 1
        if self._count == self.parties:
            self._count = 0
            self._generation += 1
            ev, self._event = self._event, self.sim.event(
                name=f"{self.name}.gen{self._generation}"
            )
            ev.trigger(gen)
            return gen
        ev = self._event
        yield ev
        return gen
