"""Deterministic discrete-event simulation kernel.

A minimal, dependency-free DES engine in the style of SimPy, built from
scratch for this reproduction (see DESIGN.md inventory item 1).  Processes
are Python generators that ``yield`` awaitables:

- :class:`Timeout` — resume after a simulated delay,
- :class:`Event` — resume when another process triggers it,
- :class:`Process` — join another process.

The engine trampolines every resumption through a binary heap keyed by
``(time, sequence)``, so execution is fully deterministic for a fixed
program and seed.
"""

from repro.sim.engine import (
    Event,
    Process,
    SimDeadlockError,
    SimStallError,
    SimError,
    Simulator,
    Timeout,
)
from repro.sim.resources import (
    BandwidthPipe,
    FairShareServer,
    FifoServer,
    Semaphore,
)
from repro.sim.sync import Barrier, Gate, SimLock
from repro.sim.rng import RngStreams
from repro.sim.trace import Counter, TimeWeightedStat, TraceRecorder

__all__ = [
    "Simulator",
    "Process",
    "Event",
    "Timeout",
    "SimError",
    "SimDeadlockError",
    "SimStallError",
    "Semaphore",
    "FifoServer",
    "BandwidthPipe",
    "FairShareServer",
    "SimLock",
    "Gate",
    "Barrier",
    "RngStreams",
    "Counter",
    "TimeWeightedStat",
    "TraceRecorder",
]
