"""DLRM-checkpoint-style streaming write workload.

Recommendation-model training periodically checkpoints its embedding
tables to SSD: long sequential shard writes sweeping the table, with the
hot head of the table (the rows training actually touches) rewritten far
more often than the cold tail.  Replayed against the serve layer this is
the canonical write-heavy tenant: every pass over the table invalidates
the previous copy of each page, and the hot-head rewrites concentrate
churn — exactly the pattern that makes an FTL garbage-collect and the
write-amplification ledger read above 1.0.

The stream here is fully deterministic (no RNG): the shard schedule is a
pure function of the spec, so a (seed, config) serve run replays the
identical write timeline on every backend and every repetition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.config import NS_PER_S
from repro.serve.arrival import TraceReplay


@dataclass(frozen=True)
class CheckpointSpec:
    """Shape of one embedding-table checkpoint stream.

    ``table_pages`` is the logical span of the table; each request writes
    one ``shard_pages``-page sequential shard.  After every
    ``hot_rewrite_period`` sequential shards, one extra shard rewrites the
    hot head (the first ``hot_fraction`` of the table), cycling through
    it — the churn source.  ``passes`` full table sweeps are recorded;
    the serve engine cycles the trace if the window outlasts it.
    """

    table_pages: int = 512
    shard_pages: int = 4
    hot_fraction: float = 0.125
    hot_rewrite_period: int = 4
    passes: int = 4

    def __post_init__(self) -> None:
        if self.table_pages < 1:
            raise ValueError("table_pages must be >= 1")
        if not 1 <= self.shard_pages <= self.table_pages:
            raise ValueError("shard_pages must be in [1, table_pages]")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if self.hot_rewrite_period < 0:
            raise ValueError("hot_rewrite_period must be >= 0")
        if self.passes < 1:
            raise ValueError("passes must be >= 1")

    @property
    def hot_pages(self) -> int:
        return max(1, int(self.table_pages * self.hot_fraction))


def checkpoint_shards(spec: CheckpointSpec) -> List[Tuple[int, ...]]:
    """The deterministic shard schedule as tuples of table-relative LBAs:
    sequential sweep shards interleaved with cycling hot-head rewrites."""
    shards: List[Tuple[int, ...]] = []
    hot_cursor = 0
    for _ in range(spec.passes):
        for i, start in enumerate(range(0, spec.table_pages, spec.shard_pages)):
            end = min(start + spec.shard_pages, spec.table_pages)
            shards.append(tuple(range(start, end)))
            if (
                spec.hot_rewrite_period
                and (i + 1) % spec.hot_rewrite_period == 0
            ):
                hot = spec.hot_pages
                shards.append(
                    tuple(
                        (hot_cursor + k) % hot for k in range(spec.shard_pages)
                    )
                )
                hot_cursor = (hot_cursor + spec.shard_pages) % hot
    return shards


def checkpoint_trace(
    spec: CheckpointSpec,
    rate_rps: float,
    place: Callable[..., Tuple[int, int]],
    lba_base: int = 0,
    tenant: Optional[str] = None,
) -> TraceReplay:
    """Build a replayable serve trace from the shard schedule.

    ``place`` is the backend's placement resolver (``backend.place``);
    every shard's logical pages are resolved once here, so the recorded
    physical coordinates agree with whatever the read side resolves for
    the same region.  Arrivals are evenly spaced at ``rate_rps`` —
    checkpoint writers are paced, not bursty.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    gap = NS_PER_S / rate_rps
    gaps: List[float] = []
    pages: List[Tuple[Tuple[int, int], ...]] = []
    for shard in checkpoint_shards(spec):
        coords: List[Tuple[int, int]] = []
        for lba in shard:
            coord = place(lba_base + lba, tenant=tenant)
            if coord not in coords:
                coords.append(coord)
        gaps.append(gap)
        pages.append(tuple(coords))
    return TraceReplay(gaps, pages=pages)
