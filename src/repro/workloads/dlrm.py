"""DLRM inference with SSD-resident embedding tables (paper §4.4).

Architecture follows Naumov et al. [34] as configured in the paper:

- *Config-1*: three 512x512 bottom-MLP layers, three 1024x1024 top-MLP
  layers (plus projection/activation layers folded into the FLOP count);
- *Config-2*: one matrix multiplication in each MLP (compute-light);
- *Config-3*: Config-1's multiplications repeated six times (compute-heavy).

Embedding tables live on the SSDs (page-striped across devices); the MLPs
run from HBM, modelled as cuBLAS kernels with a fixed effective FLOP rate
(the paper uses cuBLAS for all matmuls so compute is identical across
systems — only the embedding fetch differs).

Three systems, as in Figs. 7-10:

- ``bam``          — BaM synchronous fetch, then compute;
- ``agile_sync``   — AGILE's array-like synchronous fetch, then compute;
- ``agile_async``  — AGILE prefetches epoch *e+1* while the MLPs of epoch
  *e* run (the paper's overlap mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Literal, Optional, Sequence

import numpy as np

from repro.baselines import BamHost
from repro.config import CacheConfig, SsdConfig, SystemConfig
from repro.core import AgileHost, AgileLockChain
from repro.gpu import KernelSpec, LaunchConfig
from repro.placement import interleaved
from repro.workloads.criteo import CriteoTrace, make_criteo_trace

SystemName = Literal["bam", "agile_sync", "agile_async"]

#: Effective sustained matmul throughput of the cuBLAS kernels (FLOP/ns);
#: ~10 TFLOP/s, a realistic sustained FP32 rate for an RTX 5000 Ada class
#: part on DLRM-sized GEMMs.
MLP_FLOPS_PER_NS = 10_000.0


@dataclass(frozen=True)
class DlrmConfig:
    """MLP shapes; embedding dimension is shared by all variants."""

    name: str
    bottom: tuple[int, ...]
    top: tuple[int, ...]
    embedding_dim: int = 64

    def flops_per_sample(self) -> float:
        return float(sum(2 * d * d for d in (*self.bottom, *self.top)))

    def mlp_time_ns(self, batch: int) -> float:
        return self.flops_per_sample() * batch / MLP_FLOPS_PER_NS


def config1() -> DlrmConfig:
    return DlrmConfig("config1", bottom=(512,) * 3, top=(1024,) * 3)


def config2() -> DlrmConfig:
    return DlrmConfig("config2", bottom=(512,), top=(1024,))


def config3() -> DlrmConfig:
    return DlrmConfig("config3", bottom=(512,) * 18, top=(1024,) * 18)


DLRM_CONFIGS = {"config1": config1, "config2": config2, "config3": config3}


class EmbeddingLayout:
    """Maps (feature, categorical id) to a page-striped SSD location."""

    def __init__(self, vocab_sizes: Sequence[int], dim: int, num_ssds: int,
                 page_size: int = 4096):
        self.dim = dim
        self.vec_bytes = dim * 4  # float32
        if page_size % self.vec_bytes != 0:
            raise ValueError("embedding vectors must pack evenly into pages")
        self.vecs_per_page = page_size // self.vec_bytes
        self.num_ssds = num_ssds
        self.offsets = np.zeros(len(vocab_sizes) + 1, dtype=np.int64)
        np.cumsum(np.asarray(vocab_sizes, dtype=np.int64),
                  out=self.offsets[1:])
        self.total_vecs = int(self.offsets[-1])
        self.total_pages = (
            self.total_vecs + self.vecs_per_page - 1
        ) // self.vecs_per_page

    def vector_index(self, feature: int, cat_id: int) -> int:
        return int(self.offsets[feature]) + cat_id

    def locate(self, vec_idx: int) -> tuple[int, int, int]:
        """-> (ssd, lba, byte offset) under page-interleaved striping."""
        page = vec_idx // self.vecs_per_page
        offset = (vec_idx % self.vecs_per_page) * self.vec_bytes
        ssd, lba = interleaved(self.num_ssds).place(page)
        return ssd, lba, offset

    def table_bytes(self) -> int:
        return self.total_vecs * self.vec_bytes

    def make_table(self) -> np.ndarray:
        """Deterministic embedding values: vector v is filled with
        ``v + lane/dim`` so fetched data is value-checkable."""
        base = np.arange(self.total_vecs, dtype=np.float32)[:, None]
        lanes = (np.arange(self.dim, dtype=np.float32) / self.dim)[None, :]
        return base + lanes


@dataclass
class DlrmResult:
    system: SystemName
    config: str
    batch: int
    epochs: int
    total_ns: float
    checksum: float
    stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def ns_per_epoch(self) -> float:
        return self.total_ns / self.epochs


def _epoch_lookups(
    trace: CriteoTrace, layout: EmbeddingLayout, epoch: int, batch: int,
    features: int,
) -> np.ndarray:
    rows = trace.batch(epoch, batch)[:, :features]
    vecs = layout.offsets[:features][None, :] + rows
    # Feature-major order: the standard embedding-gather layout (one table
    # processed per warp at a time), which is what makes AGILE's warp-level
    # coalescing effective on Zipf-hot ids.
    return vecs.T.reshape(-1)


def _unique_pages(layout: EmbeddingLayout, lookups: np.ndarray) -> np.ndarray:
    return np.unique(lookups // layout.vecs_per_page)


def _system_config(
    num_ssds: int, cache_lines: int, queue_pairs: int, queue_depth: int
) -> SystemConfig:
    base = SystemConfig(
        cache=CacheConfig(num_lines=cache_lines, ways=8),
        ssds=(SsdConfig(name="ssd0", capacity_bytes=1 << 30),),
        queue_pairs=queue_pairs,
        queue_depth=queue_depth,
    )
    return base.with_ssds(num_ssds)


def _agile_gather_kernel(layout: EmbeddingLayout, out: dict,
                         coalesce: bool = True):
    def body(tc, ctrl, lookups, n_threads):
        chain = AgileLockChain(f"gather.t{tc.tid}")
        local = 0.0
        tid = tc.tid % n_threads
        rounds = (len(lookups) + n_threads - 1) // n_threads
        # Warp-uniform rounds so the two-level coalescing pipeline of
        # §3.3.2 applies: hot ids repeated across the batch collapse into
        # one cache access per warp.  ``coalesce=False`` is the ablation:
        # cache-level dedup only, like BaM.
        for r in range(rounds):
            k = r * n_threads + tid
            if k >= len(lookups):
                yield from ctrl.prefetch_pass(tc)
                continue
            ssd, lba, off = layout.locate(int(lookups[k]))
            if coalesce:
                shared = yield from ctrl.read_page_coalesced(
                    tc, chain, ssd, lba
                )
                line = shared.line
            else:
                line = yield from ctrl.read_page(tc, chain, ssd, lba)
            yield from tc.hbm_load(layout.vec_bytes)
            local += float(line.buffer[off : off + 4].view(np.float32)[0])
            if coalesce:
                ctrl.finish_coalesced_read(tc, shared)
            else:
                ctrl.cache.unpin(line)
                yield from tc.syncwarp()
        out["checksum"] = out.get("checksum", 0.0) + local

    return body


def _bam_gather_kernel(layout: EmbeddingLayout, out: dict):
    def body(tc, ctrl, lookups, n_threads):
        chain = AgileLockChain(f"bam.t{tc.tid}")
        local = 0.0
        tid = tc.tid % n_threads
        rounds = (len(lookups) + n_threads - 1) // n_threads
        # Same warp-synchronous structure as the AGILE gather (SIMT lanes
        # run in lockstep either way); BaM just has no coalescing, so every
        # lane performs its own cache access.
        for r in range(rounds):
            k = r * n_threads + tid
            if k < len(lookups):
                ssd, lba, off = layout.locate(int(lookups[k]))
                line = yield from ctrl.cache.acquire_sync(tc, chain, ssd, lba)
                yield from tc.hbm_load(layout.vec_bytes)
                local += float(line.buffer[off : off + 4].view(np.float32)[0])
                ctrl.cache.unpin(line)
            yield from tc.syncwarp()
        out["checksum"] = out.get("checksum", 0.0) + local

    return body


def _agile_prefetch_kernel(layout: EmbeddingLayout):
    def body(tc, ctrl, pages, n_threads):
        chain = AgileLockChain(f"pref.t{tc.tid}")
        tid = tc.tid % n_threads
        rounds = (len(pages) + n_threads - 1) // n_threads
        for r in range(rounds):
            k = r * n_threads + tid
            if k < len(pages):
                page = int(pages[k])
                ssd, lba = interleaved(layout.num_ssds).place(page)
                yield from ctrl.prefetch(tc, chain, ssd, lba)
            else:
                # Keep the warp's coalescing rounds uniform.
                yield from ctrl.prefetch_pass(tc)

    return body


def run_dlrm(
    system: SystemName,
    config: DlrmConfig,
    *,
    batch: int = 64,
    epochs: int = 6,
    features: int = 8,
    num_ssds: int = 1,
    cache_lines: int = 512,
    queue_pairs: int = 8,
    queue_depth: int = 64,
    num_threads: int = 128,
    trace: Optional[CriteoTrace] = None,
    seed: int = 1,
    warp_coalescing: bool = True,
) -> DlrmResult:
    """End-to-end DLRM inference; returns total simulated time.

    Defaults are scaled down from the paper (batch 2048, 10,000 epochs,
    26 features) to keep simulation costs sane; every parameter accepts
    paper-scale values.
    """
    if trace is None:
        trace = make_criteo_trace(max(batch * epochs, 512), seed=seed)
    features = min(features, trace.num_features)
    layout = EmbeddingLayout(
        trace.vocab_sizes[:features], config.embedding_dim, num_ssds
    )
    cfg = _system_config(num_ssds, cache_lines, queue_pairs, queue_depth)
    if system == "bam":
        host: AgileHost | BamHost = BamHost(cfg)
    else:
        host = AgileHost(cfg)
    host.load_data_striped(0, layout.make_table())

    out: dict = {}
    if system == "bam":
        gather = KernelSpec(
            name="dlrm.bam.gather",
            body=_bam_gather_kernel(layout, out),
            registers_per_thread=56,
        )
    else:
        gather = KernelSpec(
            name="dlrm.agile.gather",
            body=_agile_gather_kernel(layout, out, coalesce=warp_coalescing),
            registers_per_thread=44,
        )
    prefetch = KernelSpec(
        name="dlrm.prefetch",
        body=_agile_prefetch_kernel(layout),
        registers_per_thread=40,
    )
    block = min(num_threads, 256)
    grid = (num_threads + block - 1) // block
    launch_cfg = LaunchConfig(grid, block)
    mlp_ns = config.mlp_time_ns(batch)

    lookups = [
        _epoch_lookups(trace, layout, e, batch, features)
        for e in range(epochs)
    ]
    pages = [_unique_pages(layout, lk) for lk in lookups]

    def driver():
        if system == "agile_async":
            # Warm the pipeline: prefetch epoch 0 up front (the paper's
            # async mode always has the next epoch's prefetch running).
            pre = host.launch_kernel(prefetch, launch_cfg, (pages[0], num_threads))
            yield pre.done
        for e in range(epochs):
            g = host.launch_kernel(gather, launch_cfg, (lookups[e], num_threads))
            yield g.done
            if system == "agile_async" and e + 1 < epochs:
                pre = host.launch_kernel(
                    prefetch, launch_cfg, (pages[e + 1], num_threads)
                )
                yield host.sim.timeout(mlp_ns)  # MLPs overlap the prefetch
                yield pre.done
            else:
                yield host.sim.timeout(mlp_ns)

    if isinstance(host, AgileHost):
        host.start()
    proc = host.sim.spawn(driver(), name="dlrm.driver")
    host.sim.run(until_procs=[proc])
    total = host.sim.now
    if isinstance(host, AgileHost):
        host.drain()
        host.stop()
    return DlrmResult(
        system=system,
        config=config.name,
        batch=batch,
        epochs=epochs,
        total_ns=total,
        checksum=out.get("checksum", 0.0),
        stats=host.stats(),
    )


def expected_checksum(
    config: DlrmConfig,
    trace: CriteoTrace,
    *,
    batch: int,
    epochs: int,
    features: int,
    num_ssds: int = 1,
) -> float:
    """Ground-truth gather checksum (sum of each looked-up vector's first
    lane) for validating that fetched bytes are the right bytes."""
    layout = EmbeddingLayout(
        trace.vocab_sizes[:features], config.embedding_dim, num_ssds
    )
    total = 0.0
    for e in range(epochs):
        vecs = _epoch_lookups(trace, layout, e, batch, features)
        total += float(vecs.astype(np.float64).sum())
    return total
