"""Graph generation and SSD layout (GAP-benchmark style, paper §4.5).

Two generators mirroring the paper's inputs:

- ``uniform_random_graph`` — GAP's ``-u``: m edges drawn uniformly
  (Erdős–Rényi-like, regular degree distribution);
- ``kronecker_graph`` — GAP's ``-g``: R-MAT/Kronecker with the standard
  (A, B, C) = (0.57, 0.19, 0.19), giving the skewed degree distribution
  the paper's '-K' graphs have.

Graphs are stored in CSR (the paper's format) and laid out on the SSDs as
three page-aligned regions: row pointers, column indices, and (for SpMV)
values, plus the dense vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp


@dataclass(frozen=True)
class CsrGraph:
    """Compressed sparse row adjacency (int64 indices, float32 values)."""

    row_ptr: np.ndarray
    col_idx: np.ndarray
    values: Optional[np.ndarray] = None

    @property
    def num_vertices(self) -> int:
        return int(self.row_ptr.shape[0] - 1)

    @property
    def num_edges(self) -> int:
        return int(self.col_idx.shape[0])

    def degree(self, v: int) -> int:
        return int(self.row_ptr[v + 1] - self.row_ptr[v])

    def neighbors(self, v: int) -> np.ndarray:
        return self.col_idx[self.row_ptr[v] : self.row_ptr[v + 1]]

    def to_scipy(self) -> sp.csr_matrix:
        n = self.num_vertices
        data = (
            self.values
            if self.values is not None
            else np.ones(self.num_edges, dtype=np.float32)
        )
        return sp.csr_matrix(
            (data, self.col_idx.astype(np.int64), self.row_ptr), shape=(n, n)
        )


def _edges_to_csr(
    src: np.ndarray,
    dst: np.ndarray,
    n: int,
    with_values: bool,
    rng: np.random.Generator,
) -> CsrGraph:
    # Deduplicate and drop self-loops, as GAP's builder does.
    keep = src != dst
    src, dst = src[keep], dst[keep]
    mat = sp.coo_matrix(
        (np.ones(src.shape[0], dtype=np.float32), (src, dst)), shape=(n, n)
    ).tocsr()
    mat.sum_duplicates()
    mat.data[:] = 1.0
    values = None
    if with_values:
        values = rng.uniform(0.5, 1.5, size=mat.nnz).astype(np.float32)
    return CsrGraph(
        row_ptr=mat.indptr.astype(np.int64),
        col_idx=mat.indices.astype(np.int64),
        values=values,
    )


def uniform_random_graph(
    n: int,
    degree: int = 16,
    seed: int = 0,
    with_values: bool = False,
) -> CsrGraph:
    """GAP-style uniform random graph with ~n*degree directed edges."""
    if n < 2:
        raise ValueError("need at least two vertices")
    rng = np.random.default_rng(seed)
    m = n * degree
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    return _edges_to_csr(src, dst, n, with_values, rng)


def kronecker_graph(
    scale: int,
    edge_factor: int = 16,
    seed: int = 0,
    with_values: bool = False,
) -> CsrGraph:
    """R-MAT/Kronecker graph: 2^scale vertices, ~edge_factor*2^scale edges,
    quadrant probabilities (0.57, 0.19, 0.19, 0.05) as in Graph500/GAP."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = n * edge_factor
    a, b, c = 0.57, 0.19, 0.19
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        # Quadrants: A -> (0,0), B -> (0,1), C -> (1,0), D -> (1,1).
        src_bit = (r >= a + b).astype(np.int64)
        dst_bit = ((r >= a) & (r < a + b) | (r >= a + b + c)).astype(np.int64)
        src |= src_bit << bit
        dst |= dst_bit << bit
    # Permute vertex ids so degree skew is not index-correlated.
    perm = rng.permutation(n)
    return _edges_to_csr(perm[src], perm[dst], n, with_values, rng)


@dataclass(frozen=True)
class GraphSsdLayout:
    """Page-aligned base LBAs for each CSR region on the (striped) SSDs."""

    row_ptr_lba: int
    col_idx_lba: int
    values_lba: int
    x_lba: int
    total_pages: int


def layout_graph(
    graph: CsrGraph,
    page_size: int = 4096,
    x: Optional[np.ndarray] = None,
) -> GraphSsdLayout:
    """Compute base pages for the CSR regions (regions are page-aligned)."""

    def pages(nbytes: int) -> int:
        return (nbytes + page_size - 1) // page_size

    row_pages = pages(graph.row_ptr.nbytes)
    col_pages = pages(graph.col_idx.nbytes)
    val_pages = pages(graph.values.nbytes) if graph.values is not None else 0
    x_pages = pages(x.nbytes) if x is not None else 0
    row_lba = 0
    col_lba = row_lba + row_pages
    val_lba = col_lba + col_pages
    x_lba = val_lba + val_pages
    return GraphSsdLayout(
        row_ptr_lba=row_lba,
        col_idx_lba=col_lba,
        values_lba=val_lba,
        x_lba=x_lba,
        total_pages=x_lba + x_pages,
    )


def load_graph(host, graph: CsrGraph, x: Optional[np.ndarray] = None,
               page_size: int = 4096) -> GraphSsdLayout:
    """Place a graph's CSR regions on the host's SSDs (striped) and return
    the layout.  Works with both AgileHost and BamHost."""
    layout = layout_graph(graph, page_size, x)
    host.load_data_striped(layout.row_ptr_lba, graph.row_ptr)
    host.load_data_striped(layout.col_idx_lba, graph.col_idx)
    if graph.values is not None:
        host.load_data_striped(layout.values_lba, graph.values)
    if x is not None:
        host.load_data_striped(layout.x_lba, x)
    return layout
