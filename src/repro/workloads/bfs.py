"""Breadth-first search over an SSD-resident CSR graph (paper §4.5).

Level-synchronous BFS: the host keeps the frontier; one kernel launch per
level expands it.  Three variants, matching the paper's three-step
overhead-isolation methodology for Fig. 11:

1. ``native``  — graph data in HBM, accessed with plain loads (kernel time);
2. ``agile``/``bam`` with ``preload=True`` — all graph pages pre-installed
   in the software cache, so runtime shows kernel + cache-API time;
3. ``agile``/``bam`` with ``preload=False`` — full runs including NVMe I/O.

No application-level optimization in any variant (no direction reversal,
no frontier dedup bitmaps) so measured deltas are API overhead, exactly as
the paper argues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Literal, Optional

import numpy as np
import scipy.sparse.csgraph as csgraph

from repro.baselines import BamHost
from repro.config import CacheConfig, SsdConfig, SystemConfig
from repro.core import AgileHost, AgileLockChain
from repro.gpu import Gpu, KernelSpec, LaunchConfig
from repro.sim import Simulator
from repro.workloads.access import (
    read_range,
    region,
    region_page_coords,
)
from repro.workloads.graphs import CsrGraph, layout_graph, load_graph

SystemName = Literal["native", "agile", "bam"]


@dataclass
class BfsResult:
    system: SystemName
    distances: np.ndarray
    total_ns: float
    levels: int
    stats: Dict[str, Dict[str, float]] = field(default_factory=dict)


def bfs_reference(graph: CsrGraph, src: int = 0) -> np.ndarray:
    """Ground-truth BFS levels via scipy (−1 for unreachable)."""
    dist = csgraph.shortest_path(
        graph.to_scipy(), method="D", unweighted=True, indices=src
    )
    out = np.where(np.isinf(dist), -1, dist).astype(np.int64)
    return out


def _graph_config(num_ssds: int, cache_lines: int) -> SystemConfig:
    base = SystemConfig(
        cache=CacheConfig(num_lines=cache_lines, ways=8),
        ssds=(SsdConfig(name="ssd0", capacity_bytes=1 << 30),),
        queue_pairs=8,
        queue_depth=64,
    )
    return base.with_ssds(num_ssds)


def _expand_kernel(system: str, row_reg, col_reg, graph: CsrGraph):
    """One BFS level expansion; shared logic across all three systems."""

    def body(tc, ctrl, frontier, dist, level, next_frontier, n_threads):
        chain = AgileLockChain(f"bfs.t{tc.tid}")
        tid = tc.tid % n_threads
        for k in range(tid, len(frontier), n_threads):
            v = int(frontier[k])
            if system == "native":
                yield from tc.hbm_load(16)
                start = int(graph.row_ptr[v])
                end = int(graph.row_ptr[v + 1])
                yield from tc.hbm_load(max(8 * (end - start), 8))
                neighbors = graph.col_idx[start:end]
            else:
                extents = yield from read_range(
                    system, ctrl, tc, chain, row_reg, v, 2
                )
                start, end = int(extents[0]), int(extents[1])
                if end > start:
                    neighbors = yield from read_range(
                        system, ctrl, tc, chain, col_reg, start, end - start
                    )
                else:
                    neighbors = ()
            yield from tc.compute(2 * max(len(neighbors), 1))
            for u in neighbors:
                u = int(u)
                if dist[u] < 0:
                    yield from tc.atomic()  # atomicCAS on the label
                    if dist[u] < 0:  # CAS winner check
                        dist[u] = level + 1
                        next_frontier.append(u)

    return body


def run_bfs(
    system: SystemName,
    graph: CsrGraph,
    src: int = 0,
    *,
    preload: bool = False,
    num_ssds: int = 1,
    cache_lines: int = 1024,
    num_threads: int = 128,
    max_levels: Optional[int] = None,
) -> BfsResult:
    """Run BFS on the chosen system; returns distances + simulated time."""
    n = graph.num_vertices
    layout = layout_graph(graph)
    row_reg = region(layout.row_ptr_lba, num_ssds, np.int64)
    col_reg = region(layout.col_idx_lba, num_ssds, np.int64)

    if system == "native":
        sim = Simulator()
        gpu = Gpu(sim, _graph_config(num_ssds, cache_lines).gpu,
                  hbm_capacity=1 << 22)
        host = None
    else:
        cfg = _graph_config(num_ssds, cache_lines)
        host = AgileHost(cfg) if system == "agile" else BamHost(cfg)
        sim = host.sim
        load_graph(host, graph)
        if preload:
            coords = region_page_coords(row_reg, n + 1) + region_page_coords(
                col_reg, graph.num_edges
            )
            by_ssd: dict[int, list[int]] = {}
            for ssd, lba in coords:
                by_ssd.setdefault(ssd, []).append(lba)
            for ssd, lbas in by_ssd.items():
                host.preload_cache(ssd, lbas)
        if system == "agile":
            host.start()

    dist = np.full(n, -1, dtype=np.int64)
    dist[src] = 0
    frontier = [src]
    level = 0
    kernel = KernelSpec(
        name=f"bfs.{system}",
        body=_expand_kernel(system, row_reg, col_reg, graph),
        registers_per_thread={"native": 32, "agile": 37, "bam": 45}[system],
    )
    start_ns = sim.now
    while frontier and (max_levels is None or level < max_levels):
        next_frontier: list[int] = []
        threads = min(num_threads, max(len(frontier), 1))
        block = min(threads, 256)
        grid = (threads + block - 1) // block
        args = (np.asarray(frontier), dist, level, next_frontier, threads)
        if system == "native":
            gpu.run_to_completion(kernel, LaunchConfig(grid, block),
                                  args=(None, *args))
        else:
            host.run_kernel(kernel, LaunchConfig(grid, block), args)
        frontier = next_frontier
        level += 1
    total = sim.now - start_ns
    if system == "agile":
        host.stop()
    stats = host.stats() if host is not None else {}
    return BfsResult(
        system=system, distances=dist, total_ns=total, levels=level,
        stats=stats,
    )
