"""Workloads used by the paper's evaluation (§4).

- :mod:`repro.workloads.ctc` — the computation-to-communication
  micro-benchmark of Fig. 4;
- :mod:`repro.workloads.io_sweep` — 4 KB random read/write scaling across
  SSDs (Figs. 5-6);
- :mod:`repro.workloads.criteo` — a synthetic Criteo-1TB-like categorical
  click trace (Zipf-skewed, 26 features);
- :mod:`repro.workloads.dlrm` — DLRM inference with SSD-resident embedding
  tables (Figs. 7-10);
- :mod:`repro.workloads.graphs` — uniform-random and Kronecker graph
  generators with CSR/SSD layout (GAP-style, Fig. 11);
- :mod:`repro.workloads.bfs` / :mod:`repro.workloads.spmv` — the graph
  kernels of Figs. 11-12 in native / AGILE / BaM variants;
- :mod:`repro.workloads.vecmean` — the vector-mean kernel of Fig. 12.
"""

from repro.workloads.ctc import CtcResult, run_ctc_experiment
from repro.workloads.io_sweep import SweepPoint, run_bandwidth_sweep
from repro.workloads.criteo import CriteoTrace, make_criteo_trace
from repro.workloads.dlrm import DlrmConfig, DlrmResult, run_dlrm
from repro.workloads.graphs import CsrGraph, kronecker_graph, uniform_random_graph
from repro.workloads.bfs import bfs_reference, run_bfs
from repro.workloads.spmv import run_spmv, spmv_reference

__all__ = [
    "run_ctc_experiment",
    "CtcResult",
    "run_bandwidth_sweep",
    "SweepPoint",
    "make_criteo_trace",
    "CriteoTrace",
    "DlrmConfig",
    "DlrmResult",
    "run_dlrm",
    "CsrGraph",
    "uniform_random_graph",
    "kronecker_graph",
    "run_bfs",
    "bfs_reference",
    "run_spmv",
    "spmv_reference",
]
