"""Workloads used by the paper's evaluation (§4).

- :mod:`repro.workloads.ctc` — the computation-to-communication
  micro-benchmark of Fig. 4;
- :mod:`repro.workloads.io_sweep` — 4 KB random read/write scaling across
  SSDs (Figs. 5-6);
- :mod:`repro.workloads.criteo` — a synthetic Criteo-1TB-like categorical
  click trace (Zipf-skewed, 26 features);
- :mod:`repro.workloads.dlrm` — DLRM inference with SSD-resident embedding
  tables (Figs. 7-10);
- :mod:`repro.workloads.graphs` — uniform-random and Kronecker graph
  generators with CSR/SSD layout (GAP-style, Fig. 11);
- :mod:`repro.workloads.bfs` / :mod:`repro.workloads.spmv` — the graph
  kernels of Figs. 11-12 in native / AGILE / BaM variants;
- :mod:`repro.workloads.vecmean` — the vector-mean kernel of Fig. 12;
- :mod:`repro.workloads.checkpoint` — DLRM-checkpoint streaming writes
  (the write-path experiment's background tenant);
- :mod:`repro.workloads.kvcache` — LLM-inference KV-cache paging between
  HBM and SSD (the tenancy subsystem's latency-critical tenant);
- :mod:`repro.workloads.vsearch` — DiskANN-style vector-search beam
  walks over a disk-resident graph index.
"""

from repro.workloads.ctc import CtcResult, run_ctc_experiment
from repro.workloads.io_sweep import SweepPoint, run_bandwidth_sweep
from repro.workloads.criteo import CriteoTrace, make_criteo_trace
from repro.workloads.dlrm import DlrmConfig, DlrmResult, run_dlrm
from repro.workloads.graphs import CsrGraph, kronecker_graph, uniform_random_graph
from repro.workloads.bfs import bfs_reference, run_bfs
from repro.workloads.spmv import run_spmv, spmv_reference

# repro.workloads.checkpoint / .kvcache / .vsearch are import-by-module
# (not re-exported here): they build serve traces, so importing them from
# the package init would cycle through repro.serve.arrival, which itself
# imports repro.workloads.access.

__all__ = [
    "run_ctc_experiment",
    "CtcResult",
    "run_bandwidth_sweep",
    "SweepPoint",
    "make_criteo_trace",
    "CriteoTrace",
    "DlrmConfig",
    "DlrmResult",
    "run_dlrm",
    "CsrGraph",
    "uniform_random_graph",
    "kronecker_graph",
    "run_bfs",
    "bfs_reference",
    "run_spmv",
    "spmv_reference",
]
