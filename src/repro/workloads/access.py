"""Shared SSD-access helpers for the application workloads.

``StripedRegion`` maps a typed array laid out page-interleaved across the
SSDs (the paper's multi-SSD layout) to (ssd, lba, offset) coordinates, and
the reader functions fetch elements/ranges through either the AGILE or the
BaM controller with identical application-side logic — the paper's
"identical kernel implementations" methodology (§4.5, §4.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from repro.core import AgileLockChain
from repro.gpu.thread import ThreadContext
from repro.placement import interleaved


@dataclass(frozen=True)
class StripedRegion:
    """A typed array region striped across ``num_ssds`` at ``base_lba``."""

    base_lba: int
    num_ssds: int
    dtype: np.dtype
    page_size: int = 4096

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def items_per_page(self) -> int:
        return self.page_size // self.itemsize

    def locate(self, elem_idx: int) -> tuple[int, int, int]:
        """-> (ssd, lba, byte offset) of one element, via the shared
        page-interleaved placement mapping."""
        page = elem_idx // self.items_per_page
        offset = (elem_idx % self.items_per_page) * self.itemsize
        ssd, row = interleaved(self.num_ssds).place(page)
        return ssd, self.base_lba + row, offset


def region(base_lba: int, num_ssds: int, dtype: np.dtype | str) -> StripedRegion:
    return StripedRegion(base_lba, num_ssds, np.dtype(dtype))


def _acquire(system: str, ctrl, tc, chain, ssd, lba):
    """System-dispatched blocking page acquire; returns a pinned line."""
    if system == "agile":
        line = yield from ctrl.cache.acquire(tc, chain, ssd, lba)
    elif system == "bam":
        line = yield from ctrl.cache.acquire_sync(tc, chain, ssd, lba)
    else:
        raise ValueError(f"unknown system {system!r}")
    return line


def read_element(
    system: str,
    ctrl,
    tc: ThreadContext,
    chain: AgileLockChain,
    reg: StripedRegion,
    elem_idx: int,
) -> Generator[Any, Any, Any]:
    """Read one typed element through the system's cache."""
    ssd, lba, off = reg.locate(int(elem_idx))
    line = yield from _acquire(system, ctrl, tc, chain, ssd, lba)
    yield from tc.hbm_load(reg.itemsize)
    value = line.buffer[off : off + reg.itemsize].view(reg.dtype)[0]
    ctrl.cache.unpin(line)
    return value


def read_range(
    system: str,
    ctrl,
    tc: ThreadContext,
    chain: AgileLockChain,
    reg: StripedRegion,
    first: int,
    count: int,
) -> Generator[Any, Any, np.ndarray]:
    """Read ``count`` consecutive typed elements (may span pages)."""
    out = np.empty(count, dtype=reg.dtype)
    done = 0
    while done < count:
        ssd, lba, off = reg.locate(int(first + done))
        line = yield from _acquire(system, ctrl, tc, chain, ssd, lba)
        take = min((reg.page_size - off) // reg.itemsize, count - done)
        nbytes = take * reg.itemsize
        yield from tc.hbm_load(nbytes)
        out[done : done + take] = line.buffer[off : off + nbytes].view(reg.dtype)
        ctrl.cache.unpin(line)
        done += take
    return out


def region_page_coords(
    reg: StripedRegion, num_items: int
) -> list[tuple[int, int]]:
    """All (ssd, lba) pairs a region of ``num_items`` elements occupies —
    used to preload the software cache for the Fig. 11 methodology."""
    nbytes = num_items * reg.itemsize
    n_pages = (nbytes + reg.page_size - 1) // reg.page_size
    policy = interleaved(reg.num_ssds)
    coords = []
    for p in range(n_pages):
        ssd, row = policy.place(p)
        coords.append((ssd, reg.base_lba + row))
    return coords
