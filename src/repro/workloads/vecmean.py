"""Vector mean over an SSD-resident float32 array — the third Fig. 12
kernel, and a simple regression workload for the cache/IO paths."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Literal

import numpy as np

from repro.baselines import BamHost
from repro.config import CacheConfig, SsdConfig, SystemConfig
from repro.core import AgileHost, AgileLockChain
from repro.gpu import Gpu, KernelSpec, LaunchConfig
from repro.sim import Simulator
from repro.workloads.access import read_range, region

SystemName = Literal["native", "agile", "bam"]


@dataclass
class VecMeanResult:
    system: SystemName
    mean: float
    total_ns: float
    stats: Dict[str, Dict[str, float]] = field(default_factory=dict)


def _config(num_ssds: int, cache_lines: int) -> SystemConfig:
    base = SystemConfig(
        cache=CacheConfig(num_lines=cache_lines, ways=8),
        ssds=(SsdConfig(name="ssd0", capacity_bytes=1 << 30),),
        queue_pairs=8,
        queue_depth=64,
    )
    return base.with_ssds(num_ssds)


def run_vector_mean(
    system: SystemName,
    data: np.ndarray,
    *,
    num_ssds: int = 1,
    cache_lines: int = 512,
    num_threads: int = 64,
    chunk: int = 1024,
) -> VecMeanResult:
    """Compute the mean of ``data`` with the chosen system; each thread
    reduces ``chunk``-element spans in a grid-stride loop."""
    data = np.ascontiguousarray(data, dtype=np.float32)
    n = data.size
    reg = region(0, num_ssds, np.float32)

    if system == "native":
        sim = Simulator()
        gpu = Gpu(sim, _config(num_ssds, cache_lines).gpu, hbm_capacity=1 << 22)
        host = None
    else:
        cfg = _config(num_ssds, cache_lines)
        host = AgileHost(cfg) if system == "agile" else BamHost(cfg)
        sim = host.sim
        host.load_data_striped(0, data)
        if system == "agile":
            host.start()

    partials: list[float] = []

    def body(tc, ctrl, n_threads):
        chain = AgileLockChain(f"vm.t{tc.tid}")
        tid = tc.tid % n_threads
        acc = 0.0
        for first in range(tid * chunk, n, n_threads * chunk):
            count = min(chunk, n - first)
            if system == "native":
                yield from tc.hbm_load(4 * count)
                vals = data[first : first + count]
            else:
                vals = yield from read_range(
                    system, ctrl, tc, chain, reg, first, count
                )
            yield from tc.compute(count)  # one FMA per element
            acc += float(vals.astype(np.float64).sum())
        partials.append(acc)

    kernel = KernelSpec(
        name=f"vecmean.{system}",
        body=body,
        registers_per_thread={"native": 28, "agile": 31, "bam": 32}[system],
    )
    threads = min(num_threads, max(1, n // chunk))
    block = min(threads, 256)
    grid = (threads + block - 1) // block
    start_ns = sim.now
    if system == "native":
        gpu.run_to_completion(kernel, LaunchConfig(grid, block),
                              args=(None, threads))
    else:
        host.run_kernel(kernel, LaunchConfig(grid, block), (threads,))
    total = sim.now - start_ns
    if system == "agile":
        host.stop()
    stats = host.stats() if host is not None else {}
    return VecMeanResult(
        system=system,
        mean=float(sum(partials) / n),
        total_ns=total,
        stats=stats,
    )
