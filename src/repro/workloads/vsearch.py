"""DiskANN-style vector-search trace workload (fourth tenant class).

A disk-resident ANN index stores one node per page: the node's vector
plus its out-neighbour list.  A query greedily beam-searches from a
fixed entry point (the medoid) toward its target: each hop reads the
current beam's pages, scores their neighbours, and keeps the
``beam_width`` closest as the next beam.  The access pattern that
matters for storage is therefore: a scorching-hot entry page, warm pages
near it, and a long random tail — per-hop multi-page reads with high
skew toward the graph's "center".

Everything here is a pure function of the spec (seeded rng): the graph,
the queries, and the walks replay bit-identically.  Distance is a
surrogate (|node_id - target_id| on a ring) — the *geometry* of real
vectors is irrelevant to I/O; what matters is that walks are directed,
converge, and revisit the entry region, which the surrogate preserves.

Two exports: :func:`vsearch_trace` packages the walks as a physical
serve trace via the shared :func:`~repro.serve.arrival.
trace_from_access_stream` helper (one node = one 1024-float page), and
:func:`vsearch_logical_trace` as a logical trace for placement-policy
experiments (the tenancy matrix uses this one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.config import NS_PER_S
from repro.serve.arrival import TraceReplay, trace_from_access_stream
from repro.workloads.access import StripedRegion

#: float32 elements per 4 KiB page — one node's vector exactly fills a
#: page, so element index ``node * VECTOR_DIM`` lands node *n* on page *n*.
VECTOR_DIM = 1024


@dataclass(frozen=True)
class VsearchSpec:
    """Shape of one beam-search trace: the index graph and the query load."""

    num_nodes: int = 2048
    #: Out-neighbours per node (the graph's degree).
    out_degree: int = 6
    #: Beam width (pages read per hop, before dedup).
    beam_width: int = 4
    #: Hops per query walk.
    hops: int = 5
    num_queries: int = 64
    #: Entry node every walk starts from (the medoid — the hot page).
    medoid: int = 0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ValueError("num_nodes must be >= 2")
        if self.out_degree < 1:
            raise ValueError("out_degree must be >= 1")
        if self.beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        if self.hops < 1:
            raise ValueError("hops must be >= 1")
        if self.num_queries < 1:
            raise ValueError("num_queries must be >= 1")
        if not 0 <= self.medoid < self.num_nodes:
            raise ValueError("medoid must be a valid node id")


def vsearch_lba_space(spec: VsearchSpec) -> int:
    """Logical pages the index spans (one node per page)."""
    return spec.num_nodes


def _distance(node: int, target: int, num_nodes: int) -> int:
    """Ring surrogate distance: directed, converging, deterministic."""
    d = abs(node - target)
    return min(d, num_nodes - d)


def vsearch_walks(spec: VsearchSpec) -> List[Tuple[int, ...]]:
    """The deterministic walks: one tuple of visited node ids per hop
    (the beam whose pages that hop reads), queries concatenated."""
    rng = np.random.default_rng(spec.seed)
    graph = rng.integers(
        0, spec.num_nodes, size=(spec.num_nodes, spec.out_degree)
    )
    targets = rng.integers(0, spec.num_nodes, size=spec.num_queries)
    walks: List[Tuple[int, ...]] = []
    for target in (int(t) for t in targets):
        beam = [spec.medoid]
        visited = {spec.medoid}
        for _ in range(spec.hops):
            walks.append(tuple(beam))
            candidates: List[int] = []
            for node in beam:
                for nxt in (int(n) for n in graph[node]):
                    if nxt not in visited and nxt not in candidates:
                        candidates.append(nxt)
            if not candidates:
                break
            candidates.sort(
                key=lambda n: (_distance(n, target, spec.num_nodes), n)
            )
            beam = candidates[: spec.beam_width]
            visited.update(beam)
    return walks


def vsearch_trace(
    spec: VsearchSpec,
    region: StripedRegion,
    rate_rps: float,
) -> TraceReplay:
    """The walks as a physical serve trace over ``region`` (a float32
    region of at least ``num_nodes * VECTOR_DIM`` elements), built through
    the shared access-stream helper: each hop's beam becomes one request
    whose pages are the beam nodes' vector pages."""
    if np.dtype(region.dtype).itemsize != 4:
        raise ValueError("vsearch regions are float32 (4-byte) typed")
    walks = vsearch_walks(spec)
    elements: List[int] = []
    per_request = max(len(w) for w in walks)
    for beam in walks:
        # Pad short beams by repeating the first node: the helper dedups
        # coordinates, so padding adds no pages — it only keeps the
        # fixed-size grouping aligned one request per hop.
        padded = list(beam) + [beam[0]] * (per_request - len(beam))
        elements.extend(node * VECTOR_DIM for node in padded)
    return trace_from_access_stream(
        region, elements, rate_rps, elements_per_request=per_request
    )


def vsearch_logical_trace(
    spec: VsearchSpec,
    rate_rps: float,
    lba_base: int = 0,
) -> TraceReplay:
    """The walks as a *logical* serve trace (one node = one logical page
    at ``lba_base + node``): the engine resolves placement at arrival, so
    the same walk replays under any policy — the tenancy matrix's
    placement axis needs this form."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be > 0")
    walks = vsearch_walks(spec)
    gap = NS_PER_S / rate_rps
    return TraceReplay(
        [gap] * len(walks),
        logical=[tuple(lba_base + node for node in beam) for beam in walks],
    )
