"""Sparse matrix-vector multiplication over SSD-resident CSR (paper §4.5).

Row-per-thread CSR SpMV with the matrix (row pointers, column indices,
values) *and* the dense input vector on the SSDs; the output vector lives
in HBM.  Same three variants / preload methodology as BFS (see
:mod:`repro.workloads.bfs`).  SpMV adds the random-access ``x[col]``
stream, which is why the paper sees the largest cache-API gaps here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Literal

import numpy as np

from repro.baselines import BamHost
from repro.config import CacheConfig, SsdConfig, SystemConfig
from repro.core import AgileHost, AgileLockChain
from repro.gpu import Gpu, KernelSpec, LaunchConfig
from repro.sim import Simulator
from repro.workloads.access import (
    read_element,
    read_range,
    region,
    region_page_coords,
)
from repro.workloads.graphs import CsrGraph, layout_graph, load_graph

SystemName = Literal["native", "agile", "bam"]


@dataclass
class SpmvResult:
    system: SystemName
    y: np.ndarray
    total_ns: float
    stats: Dict[str, Dict[str, float]] = field(default_factory=dict)


def spmv_reference(graph: CsrGraph, x: np.ndarray) -> np.ndarray:
    return graph.to_scipy().dot(x.astype(np.float64)).astype(np.float64)


def _graph_config(num_ssds: int, cache_lines: int) -> SystemConfig:
    base = SystemConfig(
        cache=CacheConfig(num_lines=cache_lines, ways=8),
        ssds=(SsdConfig(name="ssd0", capacity_bytes=1 << 30),),
        queue_pairs=8,
        queue_depth=64,
    )
    return base.with_ssds(num_ssds)


def _spmv_kernel(system, row_reg, col_reg, val_reg, x_reg, graph, x):
    def body(tc, ctrl, y, n_threads):
        chain = AgileLockChain(f"spmv.t{tc.tid}")
        n = graph.num_vertices
        tid = tc.tid % n_threads
        for row in range(tid, n, n_threads):
            if system == "native":
                yield from tc.hbm_load(16)
                start = int(graph.row_ptr[row])
                end = int(graph.row_ptr[row + 1])
                count = end - start
                yield from tc.hbm_load(max(12 * count, 4))
                cols = graph.col_idx[start:end]
                vals = graph.values[start:end]
                yield from tc.hbm_load(4 * count)
                xs = x[cols]
            else:
                extents = yield from read_range(
                    system, ctrl, tc, chain, row_reg, row, 2
                )
                start, end = int(extents[0]), int(extents[1])
                count = end - start
                if count > 0:
                    cols = yield from read_range(
                        system, ctrl, tc, chain, col_reg, start, count
                    )
                    vals = yield from read_range(
                        system, ctrl, tc, chain, val_reg, start, count
                    )
                    xs = np.empty(count, dtype=np.float32)
                    for i, col in enumerate(cols):
                        xs[i] = yield from read_element(
                            system, ctrl, tc, chain, x_reg, int(col)
                        )
                else:
                    cols = vals = xs = np.empty(0, dtype=np.float32)
            yield from tc.compute(2 * max(count, 1))  # FMA per nonzero
            y[row] = float(
                np.dot(vals.astype(np.float64), xs.astype(np.float64))
            )

    return body


def run_spmv(
    system: SystemName,
    graph: CsrGraph,
    x: np.ndarray,
    *,
    preload: bool = False,
    num_ssds: int = 1,
    cache_lines: int = 1024,
    num_threads: int = 128,
) -> SpmvResult:
    if graph.values is None:
        raise ValueError("SpMV needs a weighted graph (with_values=True)")
    n = graph.num_vertices
    x = np.ascontiguousarray(x, dtype=np.float32)
    layout = layout_graph(graph, x=x)
    row_reg = region(layout.row_ptr_lba, num_ssds, np.int64)
    col_reg = region(layout.col_idx_lba, num_ssds, np.int64)
    val_reg = region(layout.values_lba, num_ssds, np.float32)
    x_reg = region(layout.x_lba, num_ssds, np.float32)

    if system == "native":
        sim = Simulator()
        gpu = Gpu(sim, _graph_config(num_ssds, cache_lines).gpu,
                  hbm_capacity=1 << 22)
        host = None
    else:
        cfg = _graph_config(num_ssds, cache_lines)
        host = AgileHost(cfg) if system == "agile" else BamHost(cfg)
        sim = host.sim
        load_graph(host, graph, x=x)
        if preload:
            coords = (
                region_page_coords(row_reg, n + 1)
                + region_page_coords(col_reg, graph.num_edges)
                + region_page_coords(val_reg, graph.num_edges)
                + region_page_coords(x_reg, n)
            )
            by_ssd: dict[int, list[int]] = {}
            for ssd, lba in coords:
                by_ssd.setdefault(ssd, []).append(lba)
            for ssd, lbas in by_ssd.items():
                host.preload_cache(ssd, lbas)
        if system == "agile":
            host.start()

    y = np.zeros(n, dtype=np.float64)
    kernel = KernelSpec(
        name=f"spmv.{system}",
        body=_spmv_kernel(system, row_reg, col_reg, val_reg, x_reg, graph, x),
        registers_per_thread={"native": 36, "agile": 42, "bam": 56}[system],
    )
    threads = min(num_threads, n)
    block = min(threads, 256)
    grid = (threads + block - 1) // block
    start_ns = sim.now
    if system == "native":
        gpu.run_to_completion(kernel, LaunchConfig(grid, block),
                              args=(None, y, threads))
    else:
        host.run_kernel(kernel, LaunchConfig(grid, block), (y, threads))
    total = sim.now - start_ns
    if system == "agile":
        host.stop()
    stats = host.stats() if host is not None else {}
    return SpmvResult(system=system, y=y, total_ns=total, stats=stats)
