"""Fig. 4 micro-benchmark: asynchronous vs synchronous I/O across
computation-to-communication (CTC) ratios.

Paper setup: 1024 threads in one block issue 64 NVMe commands each and
compute on the returned data; the CTC ratio is swept by scaling the number
of compute iterations.  The reproduction keeps the structure and scales
thread/request counts by parameter (defaults are laptop-sized).

The synchronous kernel fetches everything, then computes (the paper's sync
baseline).  The asynchronous kernel software-pipelines at thread level:
while computing on chunk *i*, chunk *i+1* is already in flight — the
overlap AGILE's transaction barriers make safe.

Expected shape: speedup = T_sync / T_async follows Eq. 1
(``1 + CTC`` for CTC <= 1, ``1 + 1/CTC`` above), peaking slightly below
CTC = 1 because issue/prefetch overheads cannot be hidden.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import CacheConfig, SsdConfig, SystemConfig
from repro.core import AgileHost, AgileLockChain
from repro.gpu import KernelSpec, LaunchConfig


@dataclass(frozen=True)
class CtcResult:
    ctc: float
    sync_ns: float
    async_ns: float

    @property
    def speedup(self) -> float:
        return self.sync_ns / self.async_ns


def ideal_speedup(ctc: float) -> float:
    """The paper's Equation 1."""
    if ctc < 0:
        raise ValueError("CTC ratio must be non-negative")
    if ctc <= 1.0:
        return 1.0 + ctc
    return 1.0 + 1.0 / ctc


def _ctc_config(num_threads: int) -> SystemConfig:
    return SystemConfig(
        cache=CacheConfig(num_lines=64, ways=8),  # unused by raw reads
        ssds=(SsdConfig(name="ssd0", capacity_bytes=1 << 30),),
        queue_pairs=16,
        queue_depth=128,
    )


def _make_sync_kernel(requests: int, compute_cycles: float):
    def body(tc, ctrl, bufs):
        chain = AgileLockChain(f"sync.t{tc.tid}")
        buf = bufs[tc.tid]
        # Phase 1: fetch all chunks (each waits for completion).
        for i in range(requests):
            txn = yield from ctrl.raw_read(
                tc, chain, 0, (tc.tid * requests + i) % 4096, buf
            )
            yield from txn.wait()
        # Phase 2: compute on the fetched data.
        for _ in range(requests):
            yield from tc.compute(compute_cycles)

    return body


def _make_async_kernel(requests: int, compute_cycles: float):
    def body(tc, ctrl, bufs):
        chain = AgileLockChain(f"async.t{tc.tid}")
        buf = bufs[tc.tid]
        pending = None
        for i in range(requests):
            txn = yield from ctrl.raw_read(
                tc, chain, 0, (tc.tid * requests + i) % 4096, buf
            )
            if pending is not None:
                # Compute on the previous chunk while this one is in flight.
                yield from tc.compute(compute_cycles)
                yield from pending.wait()
            pending = txn
        yield from tc.compute(compute_cycles)
        yield from pending.wait()

    return body


def _run_mode(
    mode: str,
    num_threads: int,
    requests: int,
    compute_cycles: float,
) -> float:
    host = AgileHost(_ctc_config(num_threads))
    bufs = [host.alloc_view(4096) for _ in range(num_threads)]
    maker = _make_sync_kernel if mode == "sync" else _make_async_kernel
    kernel = KernelSpec(
        name=f"ctc_{mode}",
        body=maker(requests, compute_cycles),
        registers_per_thread=48 if mode == "sync" else 52,
    )
    block = min(num_threads, 256)
    grid = (num_threads + block - 1) // block
    with host:
        duration = host.run_kernel(kernel, LaunchConfig(grid, block), (bufs,))
        host.drain()
    return duration


def calibrate_comm_cycles(num_threads: int, requests: int) -> float:
    """Measure per-chunk communication time (in GPU cycles) with zero
    compute — the denominator of the CTC ratio."""
    t_comm = _run_mode("sync", num_threads, requests, 0.0)
    cfg = SystemConfig()
    per_chunk_ns = t_comm / requests
    return per_chunk_ns / cfg.gpu.cycle_ns


def run_ctc_experiment(
    ctc_ratios: List[float],
    num_threads: int = 256,
    requests: int = 16,
    comm_cycles_per_chunk: Optional[float] = None,
) -> List[CtcResult]:
    """Sweep CTC ratios; returns sync/async times and speedups per point."""
    if comm_cycles_per_chunk is None:
        comm_cycles_per_chunk = calibrate_comm_cycles(num_threads, requests)
    results = []
    for ctc in ctc_ratios:
        compute_cycles = ctc * comm_cycles_per_chunk
        sync_ns = _run_mode("sync", num_threads, requests, compute_cycles)
        async_ns = _run_mode("async", num_threads, requests, compute_cycles)
        results.append(CtcResult(ctc=ctc, sync_ns=sync_ns, async_ns=async_ns))
    return results
