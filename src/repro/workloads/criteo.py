"""Synthetic Criteo-1TB-like click trace.

The paper builds its DLRM vocabulary from the first three days of the
Criteo 1TB click logs [12].  That dataset cannot ship with a reproduction,
so this module generates a categorically equivalent trace: 26 categorical
features whose vocabulary sizes span four orders of magnitude (as in
Criteo) and whose per-feature access frequencies follow a Zipf law — the
skew is what drives the cache behaviour the DLRM experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

#: Criteo has 26 categorical features; these scaled vocabulary sizes keep
#: its characteristic mix of a few huge tables and many tiny ones.
DEFAULT_VOCAB_SIZES = (
    40_000, 28_000, 16_000, 8_000, 6_000, 4_000, 3_000, 2_000,
    1_600, 1_200, 1_000, 800, 600, 500, 400, 300,
    250, 200, 150, 120, 100, 80, 60, 40, 20, 10,
)


@dataclass(frozen=True)
class CriteoTrace:
    """``indices[s, f]`` is the categorical id of feature ``f`` in sample
    ``s``."""

    indices: np.ndarray
    vocab_sizes: tuple[int, ...]

    @property
    def num_samples(self) -> int:
        return int(self.indices.shape[0])

    @property
    def num_features(self) -> int:
        return int(self.indices.shape[1])

    @property
    def total_vocab(self) -> int:
        return int(sum(self.vocab_sizes))

    def batch(self, epoch: int, batch_size: int) -> np.ndarray:
        """The samples of one inference epoch (wraps around the trace)."""
        start = (epoch * batch_size) % self.num_samples
        rows = np.arange(start, start + batch_size) % self.num_samples
        return self.indices[rows]


def _zipf_probabilities(vocab: int, a: float) -> np.ndarray:
    ranks = np.arange(1, vocab + 1, dtype=np.float64)
    p = ranks ** (-a)
    return p / p.sum()


def make_criteo_trace(
    num_samples: int,
    vocab_sizes: Optional[Sequence[int]] = None,
    zipf_a: float = 1.05,
    seed: int = 0,
) -> CriteoTrace:
    """Generate a trace of ``num_samples`` clicks.

    ``zipf_a`` controls the skew (Criteo categorical features are strongly
    head-heavy; ~1.05 reproduces the hot-head/long-tail split).  Each
    feature draws from its own permuted Zipf so hot ids of different
    features do not collide on the same embedding pages.
    """
    if num_samples < 1:
        raise ValueError("need at least one sample")
    sizes = tuple(vocab_sizes) if vocab_sizes is not None else DEFAULT_VOCAB_SIZES
    if any(v < 1 for v in sizes):
        raise ValueError("vocabulary sizes must be positive")
    rng = np.random.default_rng(seed)
    columns = []
    for vocab in sizes:
        probs = _zipf_probabilities(vocab, zipf_a)
        ids = rng.choice(vocab, size=num_samples, p=probs)
        # Scatter hot ids across the table (Criteo ids are hash-scattered).
        perm = rng.permutation(vocab)
        columns.append(perm[ids])
    indices = np.stack(columns, axis=1).astype(np.int64)
    return CriteoTrace(indices=indices, vocab_sizes=sizes)
