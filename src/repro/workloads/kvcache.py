"""LLM-inference KV-cache paging workload (the tenancy subsystem's core).

A serving LLM holds one KV block per ``tokens_per_block`` generated
tokens per sequence.  HBM holds only the hot working set; cold blocks
page out to SSD and page back in when attention needs them — exactly the
four-state-cache + Share-Table traffic AGILE's asynchronous read path is
built for.  This module generates that access pattern as a deterministic
schedule and exports it as two lock-step serve traces:

- the **read trace** (class ``infer``, ``op="paged"``): every decode step
  reads the sequence's attention window — the landmark block 0 plus the
  last ``attention_window`` blocks — *through the cache*, so hot blocks
  ride Share-Table hits while cold sequences' blocks fault in from flash
  and evict someone else under HBM pressure;
- the **append trace** (class ``kv_append``, ``op="modify"``): prefill
  bursts write a new sequence's initial blocks and every
  ``tokens_per_block``-th decode step extends the tail block — MODIFIED
  lines whose device programs ride eviction write-back.

The schedule models continuous batching over ``num_slots`` concurrent
sequence slots.  Sequence target lengths are Zipf-skewed (seeded — the
same spec always yields the same schedule bit-for-bit): most sequences
are short, a heavy tail runs to ``blocks_per_seq``, so slot regions see
wildly different residency lifetimes.  A finished sequence frees its
slot and the next admission reuses the slot's logical blocks, the paged
KV-allocator pattern.  Residency itself is **not** modeled here: the
traces carry logical LBAs and the runtime cache decides live what is
resident, what faults, and what evicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.config import NS_PER_S
from repro.serve.arrival import TraceReplay


@dataclass(frozen=True)
class KvCacheSpec:
    """Shape of one KV-cache paging schedule.

    ``num_slots * blocks_per_seq`` logical pages is the workload's whole
    region (:func:`kvcache_lba_space`); slot *s* owns the contiguous
    block range ``[s * blocks_per_seq, (s+1) * blocks_per_seq)``, so
    per-sequence access is sequential within a slot region.
    """

    #: Concurrent sequence slots (the continuous-batching width).
    num_slots: int = 12
    #: Max KV blocks (= 4 KiB pages) one sequence may materialise.
    blocks_per_seq: int = 24
    #: Zipf exponent for sequence target lengths (> 1; larger = shorter
    #: typical sequences, heavier contrast with the tail).
    zipf_alpha: float = 1.4
    #: Fraction of a sequence's target length written in its prefill burst.
    prefill_fraction: float = 0.25
    #: Decode reads touch block 0 plus this many trailing blocks.
    attention_window: int = 4
    #: Decode steps per KV block (how often the tail block is extended).
    tokens_per_block: int = 8
    #: Scheduler events recorded (admissions + decode steps).
    events: int = 2048
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        if self.blocks_per_seq < 2:
            raise ValueError("blocks_per_seq must be >= 2")
        if self.zipf_alpha <= 1.0:
            raise ValueError("zipf_alpha must be > 1")
        if not 0.0 < self.prefill_fraction <= 1.0:
            raise ValueError("prefill_fraction must be in (0, 1]")
        if self.attention_window < 1:
            raise ValueError("attention_window must be >= 1")
        if self.tokens_per_block < 1:
            raise ValueError("tokens_per_block must be >= 1")
        if self.events < 2 * self.num_slots:
            raise ValueError(
                "events must be >= 2 * num_slots (enough to admit and "
                "decode at least once per slot)"
            )


def kvcache_lba_space(spec: KvCacheSpec) -> int:
    """Logical pages the workload's region spans."""
    return spec.num_slots * spec.blocks_per_seq


@dataclass(frozen=True)
class KvCacheSchedule:
    """The deterministic schedule: per-request logical block tuples
    (region-relative), plus the summary stats tests pin down."""

    reads: Tuple[Tuple[int, ...], ...]
    appends: Tuple[Tuple[int, ...], ...]
    sequences_started: int
    sequences_finished: int
    mean_target_blocks: float
    max_target_blocks: int


def build_schedule(spec: KvCacheSpec) -> KvCacheSchedule:
    """Run the slot scheduler for ``spec.events`` steps.

    Each step picks a slot (seeded uniform draw).  An empty slot admits a
    fresh sequence — Zipf target length, prefill burst appended; a busy
    slot decodes — attention-window read appended, and every
    ``tokens_per_block``-th token either extends the tail block or, at
    target length, retires the sequence and frees the slot.
    """
    rng = np.random.default_rng(spec.seed)
    reads: List[Tuple[int, ...]] = []
    appends: List[Tuple[int, ...]] = []
    # Per-slot state: None = free, else (cur_blocks, target, tokens_into).
    slots: List[Tuple[int, int, int] | None] = [None] * spec.num_slots
    started = finished = 0
    targets: List[int] = []
    for _ in range(spec.events):
        slot = int(rng.integers(0, spec.num_slots))
        base = slot * spec.blocks_per_seq
        state = slots[slot]
        if state is None:
            # Admit: Zipf-skewed target length, then the prefill burst.
            z = int(rng.zipf(spec.zipf_alpha))
            target = max(2, min(spec.blocks_per_seq, z))
            prefill = max(1, int(target * spec.prefill_fraction))
            appends.append(tuple(base + b for b in range(prefill)))
            slots[slot] = (prefill, target, 0)
            started += 1
            targets.append(target)
            continue
        cur, target, tokens = state
        # Decode: attention window = landmark block 0 + trailing blocks.
        window = min(spec.attention_window, cur)
        blocks = [base]
        for b in range(cur - window, cur):
            lba = base + b
            if lba not in blocks:
                blocks.append(lba)
        reads.append(tuple(blocks))
        tokens += 1
        if tokens >= spec.tokens_per_block:
            tokens = 0
            if cur < target:
                # Tail block extension: one page through the cache.
                appends.append((base + cur,))
                cur += 1
            else:
                # Sequence done; the slot's blocks go cold until reuse.
                slots[slot] = None
                finished += 1
                continue
        slots[slot] = (cur, target, tokens)
    if not reads or not appends:
        raise ValueError(
            "schedule produced an empty trace; increase spec.events"
        )
    return KvCacheSchedule(
        reads=tuple(reads),
        appends=tuple(appends),
        sequences_started=started,
        sequences_finished=finished,
        mean_target_blocks=float(np.mean(targets)) if targets else 0.0,
        max_target_blocks=max(targets) if targets else 0,
    )


def kvcache_traces(
    spec: KvCacheSpec,
    read_rate_rps: float,
    lba_base: int = 0,
) -> Tuple[TraceReplay, TraceReplay]:
    """The schedule as two lock-step logical serve traces
    ``(read_trace, append_trace)``.

    Both carry *logical* LBAs (``lba_base`` + region-relative block), so
    the serve engine resolves them through the backend's placement policy
    at arrival and the same workload replays on any array layout.  Reads
    are evenly paced at ``read_rate_rps``; appends are paced so both
    traces complete one schedule pass in the same simulated time — the
    append stream is causally tied to the decode stream, not an
    independent arrival process.
    """
    if read_rate_rps <= 0:
        raise ValueError("read_rate_rps must be > 0")
    sched = build_schedule(spec)
    read_gap = NS_PER_S / read_rate_rps
    pass_ns = read_gap * len(sched.reads)
    append_gap = pass_ns / len(sched.appends)
    read_trace = TraceReplay(
        [read_gap] * len(sched.reads),
        logical=[tuple(lba_base + b for b in req) for req in sched.reads],
    )
    append_trace = TraceReplay(
        [append_gap] * len(sched.appends),
        logical=[tuple(lba_base + b for b in req) for req in sched.appends],
    )
    return read_trace, append_trace
