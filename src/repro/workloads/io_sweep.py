"""Figs. 5-6: 4 KB random read/write bandwidth scaling across SSDs.

Requests are interleaved across SSDs exactly as the paper describes
(request *i* goes to SSD ``i mod n``).  Bandwidth is total bytes moved over
the simulated makespan of the request batch.  Expected shape: bandwidth
rises with concurrency and saturates at ~3.7 GB/s per SSD for reads and
~2.2 GB/s for writes (additive across SSDs), after enough concurrent
requests to keep every flash channel busy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional

import numpy as np

from repro.config import CacheConfig, SsdConfig, SystemConfig
from repro.core import AgileHost, AgileLockChain
from repro.gpu import KernelSpec, LaunchConfig
from repro.placement import interleaved, round_robin


@dataclass(frozen=True)
class SweepPoint:
    num_ssds: int
    total_requests: int
    duration_ns: float
    bytes_moved: int
    #: Simulator events dispatched for this point (scheduler work, not
    #: simulated time).  Wall-clock throughput is measured by the bench
    #: layer, which owns real-time reads (AGL001); workloads only report
    #: the simulated-event count.
    sim_events: int = 0
    #: Error-status completions across all devices.  A fault-free sweep
    #: must report zero; the bench trend artifact records it so silent
    #: error-path regressions show up in CI history.
    device_errors: int = 0
    #: Telemetry snapshot (:meth:`repro.telemetry.Telemetry.snapshot`) when
    #: the point ran with telemetry enabled; the bench export embeds it.
    telemetry: Optional[dict] = None

    @property
    def bandwidth_gbps(self) -> float:
        """Aggregate bandwidth in GB/s (decimal)."""
        return self.bytes_moved / self.duration_ns  # B/ns == GB/s


def _sweep_config(num_ssds: int) -> SystemConfig:
    base = SystemConfig(
        cache=CacheConfig(num_lines=64, ways=8),
        ssds=(SsdConfig(name="ssd0", capacity_bytes=1 << 30),),
        queue_pairs=16,
        queue_depth=256,
    )
    return base.with_ssds(num_ssds)


def _make_kernel(
    op: Literal["read", "write"],
    requests_per_thread: int,
    num_ssds: int,
    lba_space: int,
    inflight_per_thread: int,
):
    def body(tc, ctrl, bufs, rng_seed):
        chain = AgileLockChain(f"io.t{tc.tid}")
        buf = bufs[tc.tid]
        rng = np.random.default_rng(rng_seed + tc.tid)
        lbas = rng.integers(0, lba_space, size=requests_per_thread)
        # The paper's interleave, expressed through the placement layer's
        # round-robin shim (request i -> SSD ``i mod n``, random device LBA).
        policy = interleaved(num_ssds)
        pending = []
        for i in range(requests_per_thread):
            ssd, lba = round_robin(
                policy, tc.tid * requests_per_thread + i, int(lbas[i])
            )
            if op == "read":
                txn = yield from ctrl.raw_read(tc, chain, ssd, lba, buf)
            else:
                txn = yield from ctrl.raw_write(tc, chain, ssd, lba, buf)
            pending.append(txn)
            if len(pending) >= inflight_per_thread:
                yield from pending.pop(0).wait()
        for txn in pending:
            yield from txn.wait()

    return body


def run_bandwidth_sweep(
    op: Literal["read", "write"],
    num_ssds: int,
    total_requests: int,
    num_threads: int = 256,
    inflight_per_thread: int = 8,
    telemetry: bool = False,
) -> SweepPoint:
    """One point of Fig. 5 (op='read') / Fig. 6 (op='write').

    ``telemetry=True`` forces a telemetry session on the host (the point's
    snapshot lands in :attr:`SweepPoint.telemetry`); the default defers to
    any active :func:`repro.telemetry.capture` block, e.g. the bench CLI's
    ``--trace`` flag.
    """
    if op not in ("read", "write"):
        raise ValueError(f"op must be 'read' or 'write', got {op!r}")
    host = AgileHost(
        _sweep_config(num_ssds), telemetry=True if telemetry else None
    )
    threads = min(num_threads, total_requests)
    requests_per_thread = max(1, total_requests // threads)
    bufs = [host.alloc_view(4096) for _ in range(threads)]
    for b in bufs:
        b[:] = 0xAB
    lba_space = host.cfg.ssds[0].num_pages // 2
    kernel = KernelSpec(
        name=f"sweep_{op}",
        body=_make_kernel(
            op, requests_per_thread, num_ssds, lba_space, inflight_per_thread
        ),
        registers_per_thread=40,
    )
    block = min(threads, 256)
    grid = (threads + block - 1) // block
    with host:
        duration = host.run_kernel(
            kernel, LaunchConfig(grid, block), (bufs, host.cfg.seed)
        )
        host.drain()
    moved = sum(
        s.bytes_read if op == "read" else s.bytes_written for s in host.ssds
    )
    return SweepPoint(
        num_ssds=num_ssds,
        total_requests=threads * requests_per_thread,
        duration_ns=duration,
        bytes_moved=moved,
        sim_events=host.sim.event_count,
        device_errors=host.driver.total_errors(),
        telemetry=(
            host.telemetry.snapshot() if host.telemetry is not None else None
        ),
    )


def run_scaling_curve(
    op: Literal["read", "write"],
    num_ssds: int,
    request_counts: List[int],
    num_threads: int = 256,
) -> List[SweepPoint]:
    """A full Fig. 5/6 curve for one SSD count."""
    return [
        run_bandwidth_sweep(op, num_ssds, n, num_threads=num_threads)
        for n in request_counts
    ]
