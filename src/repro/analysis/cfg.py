"""Per-function control-flow graphs over Python ASTs.

Blocks hold *simple* statements plus three pseudo-items that make loop and
branch structure visible to transfer functions without recursing into
bodies:

- :class:`Test` — the test expression of an ``if``/``while``; the block's
  outgoing ``true``/``false`` edges refer to it (used for
  ``try_acquire``-style path sensitivity).
- :class:`ForBind` — a ``for`` header: evaluate the iterable, bind the
  targets.  Carries the loop so rule packs can reason about iteration
  order (AGL010).
- :class:`WithBind` — one ``with`` item: evaluate the context expression,
  bind the optional ``as`` target.

Edges are labelled ``norm``/``true``/``false``/``ex``.  ``ex`` edges
over-approximate exception flow (every statement in a ``try`` body may
jump to every handler); analyses that only care about non-exception paths
(lock-release checking) simply skip them.

Known imprecision, by design: ``while True`` loops get no false edge (so
code after them is only reachable via ``break``); a bare ``raise`` or an
uncaught exception ends in the distinguished ``raise_exit`` block, which
is *not* the normal ``exit``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

EdgeKind = str  # "norm" | "true" | "false" | "ex"


@dataclass
class Test:
    """Branch/loop test pseudo-statement."""

    expr: ast.expr
    node: ast.stmt


@dataclass
class ForBind:
    """``for target in iter`` header pseudo-statement."""

    target: ast.expr
    iter: ast.expr
    node: ast.stmt


@dataclass
class WithBind:
    """One ``with ctx as target`` item pseudo-statement."""

    ctx: ast.expr
    target: Optional[ast.expr]
    node: ast.stmt


Item = Union[ast.stmt, Test, ForBind, WithBind]


@dataclass
class Edge:
    target: "Block"
    kind: EdgeKind


@dataclass
class Block:
    id: int
    items: List[Item] = field(default_factory=list)
    edges: List[Edge] = field(default_factory=list)

    def edge_to(self, target: "Block", kind: EdgeKind = "norm") -> None:
        for e in self.edges:
            if e.target is target and e.kind == kind:
                return
        self.edges.append(Edge(target, kind))


@dataclass
class Cfg:
    """One function's control-flow graph."""

    func: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    blocks: List[Block]
    entry: Block
    exit: Block
    raise_exit: Block


@dataclass
class _Loop:
    head: Block
    after: Block


@dataclass
class _Finally:
    entry: Block
    exit_block: Block
    #: Continuation blocks the finally must fall through to (loop heads for
    #: ``continue``, loop afters for ``break``, function exit for ``return``).
    conts: List[Block] = field(default_factory=list)

    def add_cont(self, block: Block) -> None:
        if block not in self.conts:
            self.conts.append(block)


class _Builder:
    def __init__(self, func: Union[ast.FunctionDef, ast.AsyncFunctionDef]):
        self.func = func
        self.blocks: List[Block] = []
        self.entry = self.new_block()
        self.exit = self.new_block()
        self.raise_exit = self.new_block()
        self.loops: List[_Loop] = []
        self.finallies: List[_Finally] = []

    def new_block(self) -> Block:
        block = Block(id=len(self.blocks))
        self.blocks.append(block)
        return block

    # -- non-local jumps, routed through enclosing finally blocks ------------

    def _jump(self, cur: Block, target: Block) -> None:
        """Edge ``cur -> target``, detouring through the innermost pending
        ``finally`` (approximate: one level is enough for this codebase)."""
        if self.finallies:
            fin = self.finallies[-1]
            cur.edge_to(fin.entry)
            fin.add_cont(target)
        else:
            cur.edge_to(target)

    # -- statement sequencing -------------------------------------------------

    def seq(self, stmts: Sequence[ast.stmt], cur: Block) -> Block:
        for stmt in stmts:
            cur = self.stmt(stmt, cur)
        return cur

    def stmt(self, node: ast.stmt, cur: Block) -> Block:
        if isinstance(node, ast.If):
            return self._if(node, cur)
        if isinstance(node, (ast.While,)):
            return self._while(node, cur)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return self._for(node, cur)
        if isinstance(node, (ast.Try,)):
            return self._try(node, cur)
        if isinstance(node, (ast.With, ast.AsyncWith)):
            return self._with(node, cur)
        if isinstance(node, ast.Match):
            return self._match(node, cur)
        if isinstance(node, ast.Return):
            cur.items.append(node)
            self._jump(cur, self.exit)
            return self.new_block()  # unreachable continuation
        if isinstance(node, ast.Raise):
            cur.items.append(node)
            cur.edge_to(self.raise_exit, "ex")
            return self.new_block()
        if isinstance(node, ast.Break):
            if self.loops:
                self._jump(cur, self.loops[-1].after)
            return self.new_block()
        if isinstance(node, ast.Continue):
            if self.loops:
                self._jump(cur, self.loops[-1].head)
            return self.new_block()
        # Nested defs/classes are opaque statements here; their bodies get
        # their own CFGs from build_cfgs().
        cur.items.append(node)
        return cur

    def _if(self, node: ast.If, cur: Block) -> Block:
        cur.items.append(Test(node.test, node))
        then_entry = self.new_block()
        after = self.new_block()
        cur.edge_to(then_entry, "true")
        then_exit = self.seq(node.body, then_entry)
        then_exit.edge_to(after)
        if node.orelse:
            else_entry = self.new_block()
            cur.edge_to(else_entry, "false")
            else_exit = self.seq(node.orelse, else_entry)
            else_exit.edge_to(after)
        else:
            cur.edge_to(after, "false")
        return after

    @staticmethod
    def _is_const_true(expr: ast.expr) -> bool:
        return isinstance(expr, ast.Constant) and bool(expr.value) is True

    def _while(self, node: ast.While, cur: Block) -> Block:
        head = self.new_block()
        after = self.new_block()
        cur.edge_to(head)
        head.items.append(Test(node.test, node))
        body_entry = self.new_block()
        head.edge_to(body_entry, "true")
        if not self._is_const_true(node.test):
            if node.orelse:
                else_entry = self.new_block()
                head.edge_to(else_entry, "false")
                self.seq(node.orelse, else_entry).edge_to(after)
            else:
                head.edge_to(after, "false")
        self.loops.append(_Loop(head, after))
        body_exit = self.seq(node.body, body_entry)
        self.loops.pop()
        body_exit.edge_to(head)
        return after

    def _for(self, node: Union[ast.For, ast.AsyncFor], cur: Block) -> Block:
        head = self.new_block()
        after = self.new_block()
        cur.edge_to(head)
        head.items.append(ForBind(node.target, node.iter, node))
        body_entry = self.new_block()
        head.edge_to(body_entry, "true")
        if node.orelse:
            else_entry = self.new_block()
            head.edge_to(else_entry, "false")
            self.seq(node.orelse, else_entry).edge_to(after)
        else:
            head.edge_to(after, "false")
        self.loops.append(_Loop(head, after))
        body_exit = self.seq(node.body, body_entry)
        self.loops.pop()
        body_exit.edge_to(head)
        return after

    def _with(self, node: Union[ast.With, ast.AsyncWith], cur: Block) -> Block:
        for item in node.items:
            cur.items.append(WithBind(item.context_expr, item.optional_vars, node))
        return self.seq(node.body, cur)

    def _match(self, node: ast.Match, cur: Block) -> Block:
        cur.items.append(ast.Expr(value=node.subject))
        after = self.new_block()
        for case in node.cases:
            case_entry = self.new_block()
            cur.edge_to(case_entry, "true")
            self.seq(case.body, case_entry).edge_to(after)
        cur.edge_to(after, "false")
        return after

    def _try(self, node: ast.Try, cur: Block) -> Block:
        after = self.new_block()
        fin: Optional[_Finally] = None
        if node.finalbody:
            fin_entry = self.new_block()
            fin = _Finally(entry=fin_entry, exit_block=fin_entry)
            self.finallies.append(fin)

        body_entry = self.new_block()
        cur.edge_to(body_entry)
        first_body_block = len(self.blocks)
        body_exit = self.seq(node.body, body_entry)
        if node.orelse:
            body_exit = self.seq(node.orelse, body_exit)
        body_range = [body_entry] + self.blocks[first_body_block:]

        handler_exits: List[Block] = []
        for handler in node.handlers:
            h_entry = self.new_block()
            for block in body_range:
                block.edge_to(h_entry, "ex")
            handler_exits.append(self.seq(handler.body, h_entry))

        if fin is not None:
            self.finallies.pop()
            fin_exit = self.seq(node.finalbody, fin.entry)
            fin.exit_block = fin_exit
            body_exit.edge_to(fin.entry)
            for h_exit in handler_exits:
                h_exit.edge_to(fin.entry)
            if not node.handlers:
                for block in body_range:
                    block.edge_to(fin.entry, "ex")
                fin_exit.edge_to(self.raise_exit, "ex")
            fin_exit.edge_to(after)
            for cont in fin.conts:
                fin_exit.edge_to(cont)
        else:
            body_exit.edge_to(after)
            for h_exit in handler_exits:
                h_exit.edge_to(after)
            if not node.handlers:
                for block in body_range:
                    block.edge_to(self.raise_exit, "ex")
        return after

    def build(self) -> Cfg:
        last = self.seq(self.func.body, self.entry)
        last.edge_to(self.exit)
        return Cfg(
            func=self.func,
            blocks=self.blocks,
            entry=self.entry,
            exit=self.exit,
            raise_exit=self.raise_exit,
        )


def build_cfg(func: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> Cfg:
    """Build the CFG for one function's own body (nested defs opaque)."""
    return _Builder(func).build()


def iter_functions(
    tree: ast.Module,
) -> List[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
    """Every function/method in the module, in source order (nested
    functions included — each gets its own CFG)."""
    out: List[Union[ast.FunctionDef, ast.AsyncFunctionDef]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append(node)
    out.sort(key=lambda fn: (fn.lineno, fn.col_offset))
    return out


__all__ = [
    "Block",
    "Cfg",
    "Edge",
    "ForBind",
    "Item",
    "Test",
    "WithBind",
    "build_cfg",
    "iter_functions",
]
