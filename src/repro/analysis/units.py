"""Unit-consistency checking (AGL011).

The repository encodes physical units in names — ``*_ns`` (simulated
nanoseconds), ``*_bytes``, ``*_pages``, ``*_cycles`` — and the scheduler
API is unit-blind (``schedule_at(when)`` takes a float).  A pages value
added to a nanoseconds value is silently wrong by orders of magnitude and
only shows up as a bogus latency curve.  This pack infers a small unit
lattice from naming conventions, propagates it flow-sensitively through
local assignments, and flags:

- ``a + b`` / ``a - b`` / comparisons where both sides have *different*
  known units (multiplication and division are conversions and exempt);
- assigning a value of known unit ``V`` to a name declaring unit ``U``;
- unit-less numeric literals passed directly as scheduler delays
  (``timeout(200.0)``): implicit nanoseconds that should be bound to a
  ``*_ns`` name or config field first.

Names containing ``_per_`` are ratios (``bytes_per_ns``) and stay
un-united; so do ``*_ns``-suffixed conversion factors used purely in
multiplication.  Soundness caveat: attributes are inferred from the final
name segment only (``cfg.read_lat_ns`` -> ns), and unknown units never
fire — the pack under-approximates.
"""

from __future__ import annotations

import ast
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.cfg import ForBind, Item, Test, WithBind, build_cfg, iter_functions
from repro.analysis.dataflow import Env, ForwardSolver
from repro.analysis.source import Finding, SourceFile, dotted_name


class Unit(Enum):
    NS = "ns"
    BYTES = "bytes"
    PAGES = "pages"
    CYCLES = "cycles"
    UNKNOWN = "?"

    def __str__(self) -> str:
        return self.value


_SUFFIXES: Tuple[Tuple[str, Unit], ...] = (
    ("_ns", Unit.NS),
    ("_bytes", Unit.BYTES),
    ("_pages", Unit.PAGES),
    ("_cycles", Unit.CYCLES),
)

_EXACT: Dict[str, Unit] = {
    "now": Unit.NS,
    "when": Unit.NS,
    "deadline": Unit.NS,
    "nbytes": Unit.BYTES,
    "page_size": Unit.BYTES,
    "num_pages": Unit.PAGES,
    "n_pages": Unit.PAGES,
    "npages": Unit.PAGES,
}

_PREFIXES: Tuple[Tuple[str, Unit], ...] = (("lat_", Unit.NS),)

#: Scheduler-delay sinks: (callee name, indices of delay arguments).
_DELAY_SINKS: Dict[str, Tuple[int, ...]] = {
    "schedule_at": (0,),
    "call_at": (0,),
    "timeout": (0,),
    "Timeout": (0,),
}


def unit_of_name(name: str) -> Unit:
    """Infer the unit a bare identifier declares, from the conventions
    above.  Ratio names (``*_per_*``) and everything unmatched are
    UNKNOWN."""
    if "_per_" in name:
        return Unit.UNKNOWN
    exact = _EXACT.get(name)
    if exact is not None:
        return exact
    for suffix, unit in _SUFFIXES:
        if name.endswith(suffix):
            return unit
    for prefix, unit in _PREFIXES:
        if name.startswith(prefix):
            return unit
    return Unit.UNKNOWN


def _join(a: Unit, b: Unit) -> Unit:
    return a if a == b else Unit.UNKNOWN


class _FunctionUnits:
    """One function's flow-sensitive unit pass."""

    def __init__(self, file: SourceFile, fn: ast.FunctionDef | ast.AsyncFunctionDef):
        self.file = file
        self.fn = fn
        self.findings: List[Finding] = []
        self._seen: set[Tuple[int, int, str]] = set()

    def add(self, node: ast.AST, message: str) -> None:
        key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0), message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(
            Finding(self.file.display, key[0], key[1], "AGL011", message)
        )

    # -- expression unit inference -------------------------------------------

    def unit_of(self, node: Optional[ast.expr], env: Env[Unit],
                reporting: bool) -> Unit:
        if node is None:
            return Unit.UNKNOWN
        if isinstance(node, ast.Name):
            env_unit = env.get(node.id, Unit.UNKNOWN)
            if env_unit is not Unit.UNKNOWN:
                return env_unit
            return unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return unit_of_name(node.attr)
        if isinstance(node, ast.Constant):
            return Unit.UNKNOWN
        if isinstance(node, ast.BinOp):
            left = self.unit_of(node.left, env, reporting)
            right = self.unit_of(node.right, env, reporting)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                if (
                    reporting
                    and left is not Unit.UNKNOWN
                    and right is not Unit.UNKNOWN
                    and left is not right
                ):
                    self.add(
                        node,
                        f"mixed-unit arithmetic: {ast.unparse(node.left)} "
                        f"[{left}] {'+' if isinstance(node.op, ast.Add) else '-'} "
                        f"{ast.unparse(node.right)} [{right}]",
                    )
                if left is right:
                    return left
                # unit + unitless keeps the unit (e.g. `now + 5`): the
                # unit-less-delay rule fires at sinks, not here.
                if left is Unit.UNKNOWN:
                    return right
                if right is Unit.UNKNOWN:
                    return left
                return Unit.UNKNOWN
            if isinstance(node.op, ast.Mod):
                return left
            # *, /, //, **: conversions; result unit unknown.
            return Unit.UNKNOWN
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand, env, reporting)
        if isinstance(node, ast.IfExp):
            return _join(
                self.unit_of(node.body, env, reporting),
                self.unit_of(node.orelse, env, reporting),
            )
        if isinstance(node, ast.Compare):
            left_unit = self.unit_of(node.left, env, reporting)
            for comparator in node.comparators:
                right_unit = self.unit_of(comparator, env, reporting)
                if (
                    reporting
                    and left_unit is not Unit.UNKNOWN
                    and right_unit is not Unit.UNKNOWN
                    and left_unit is not right_unit
                ):
                    self.add(
                        node,
                        f"mixed-unit comparison: {ast.unparse(node.left)} "
                        f"[{left_unit}] vs {ast.unparse(comparator)} "
                        f"[{right_unit}]",
                    )
                left_unit = right_unit
            return Unit.UNKNOWN
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.unit_of(node.value, env, reporting)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.unit_of(node.value, env, reporting)
            return Unit.UNKNOWN
        if isinstance(node, ast.Call):
            self._check_call(node, env, reporting)
            func_name = (
                node.func.id
                if isinstance(node.func, ast.Name)
                else node.func.attr
                if isinstance(node.func, ast.Attribute)
                else None
            )
            if func_name in ("min", "max", "abs", "round", "int", "float", "sum"):
                unit = Unit.UNKNOWN
                for a in node.args:
                    unit = (
                        self.unit_of(a, env, reporting)
                        if unit is Unit.UNKNOWN
                        else unit
                    )
                return unit
            if func_name is not None:
                return unit_of_name(func_name)
            return Unit.UNKNOWN
        return Unit.UNKNOWN

    def _check_call(self, call: ast.Call, env: Env[Unit], reporting: bool) -> None:
        if not reporting:
            return
        func_name = (
            call.func.id
            if isinstance(call.func, ast.Name)
            else call.func.attr
            if isinstance(call.func, ast.Attribute)
            else None
        )
        # Keyword delays: any *_ns-named keyword is self-documenting.
        if func_name in _DELAY_SINKS:
            dotted = dotted_name(call.func) or func_name
            for index in _DELAY_SINKS[func_name]:
                if index >= len(call.args):
                    continue
                arg = call.args[index]
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, (int, float))
                    and not isinstance(arg.value, bool)
                    and arg.value != 0
                ):
                    self.add(
                        arg,
                        f"unit-less constant {arg.value!r} as {dotted}() "
                        f"delay; bind it to a *_ns name or config field",
                    )
                else:
                    unit = self.unit_of(arg, env, False)
                    if unit not in (Unit.NS, Unit.UNKNOWN):
                        self.add(
                            arg,
                            f"{dotted}() delay has unit [{unit}], expected "
                            f"nanoseconds",
                        )

    # -- driver ---------------------------------------------------------------

    def run(self) -> List[Finding]:
        graph = build_cfg(self.fn)

        def assign(env: Env[Unit], target: ast.expr, value_unit: Unit,
                   reporting: bool) -> None:
            if isinstance(target, ast.Name):
                declared = unit_of_name(target.id)
                if (
                    reporting
                    and declared is not Unit.UNKNOWN
                    and value_unit is not Unit.UNKNOWN
                    and declared is not value_unit
                ):
                    self.add(
                        target,
                        f"assigning [{value_unit}] value to {target.id} "
                        f"[{declared}]",
                    )
                env[target.id] = (
                    declared if declared is not Unit.UNKNOWN else value_unit
                )
            elif isinstance(target, ast.Attribute):
                declared = unit_of_name(target.attr)
                if (
                    reporting
                    and declared is not Unit.UNKNOWN
                    and value_unit is not Unit.UNKNOWN
                    and declared is not value_unit
                ):
                    self.add(
                        target,
                        f"assigning [{value_unit}] value to attribute "
                        f"{target.attr} [{declared}]",
                    )
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    assign(env, elt, Unit.UNKNOWN, reporting)

        def transfer(env: Env[Unit], item: Item, reporting: bool) -> Env[Unit]:
            if isinstance(item, ast.Assign):
                unit = self.unit_of(item.value, env, reporting)
                for tgt in item.targets:
                    assign(env, tgt, unit, reporting)
            elif isinstance(item, ast.AnnAssign) and item.value is not None:
                assign(
                    env, item.target,
                    self.unit_of(item.value, env, reporting), reporting,
                )
            elif isinstance(item, ast.AugAssign):
                value_unit = self.unit_of(item.value, env, reporting)
                if isinstance(item.target, (ast.Name, ast.Attribute)):
                    target_unit = self.unit_of(item.target, env, False)
                    if (
                        reporting
                        and isinstance(item.op, (ast.Add, ast.Sub))
                        and target_unit is not Unit.UNKNOWN
                        and value_unit is not Unit.UNKNOWN
                        and target_unit is not value_unit
                    ):
                        self.add(
                            item,
                            f"mixed-unit arithmetic: "
                            f"{ast.unparse(item.target)} [{target_unit}] "
                            f"+= ... [{value_unit}]",
                        )
            elif isinstance(item, ast.Expr):
                self.unit_of(item.value, env, reporting)
            elif isinstance(item, ast.Return):
                self.unit_of(item.value, env, reporting)
            elif isinstance(item, Test):
                self.unit_of(item.expr, env, reporting)
            elif isinstance(item, ForBind):
                self.unit_of(item.iter, env, reporting)
                # Loop elements: unknown unit unless the name declares one.
                if isinstance(item.target, ast.Name):
                    env[item.target.id] = unit_of_name(item.target.id)
            elif isinstance(item, WithBind):
                self.unit_of(item.ctx, env, reporting)
            return env

        init: Env[Unit] = {}
        for arg in self.fn.args.posonlyargs + self.fn.args.args:
            unit = unit_of_name(arg.arg)
            if unit is not Unit.UNKNOWN:
                init[arg.arg] = unit
        solver: ForwardSolver[Unit] = ForwardSolver(
            graph,
            transfer=lambda env, item: transfer(env, item, reporting=False),
            join_value=_join,
        )
        solver.solve(init)
        solver.sweep(lambda env, _b, item: transfer(env, item, reporting=True))
        return self.findings


def analyze_units(files: Sequence[SourceFile]) -> List[Finding]:
    """Run AGL011 over the given files."""
    findings: List[Finding] = []
    for f in files:
        for fn in iter_functions(f.tree):
            findings.extend(_FunctionUnits(f, fn).run())
    return findings


__all__ = ["Unit", "analyze_units", "unit_of_name"]
