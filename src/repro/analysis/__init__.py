"""``repro.analysis`` — protocol invariant checkers, sim-time race and
lock-order analysis, and the simulation-safety lint.

Three layers (see DESIGN.md "Invariants & analysis"):

1. *Runtime invariant checkers* (:mod:`repro.analysis.invariants`) attach
   to a live :class:`~repro.core.host.AgileHost` and fail the simulation
   loudly the instant a protocol rule from the paper is broken.
2. *Offline analyzers* (:mod:`repro.analysis.races`) replay the recorded
   event stream after a run and report latent lock-order inversions and
   unsynchronized cache-line accesses even when this seed got lucky.
3. *Static lint* (:mod:`repro.analysis.lint`) enforces simulation-safety
   rules on the source tree without running anything.

Typical use::

    from repro.analysis import attach

    host = AgileHost(cfg)
    session = attach(host)          # or run pytest --agile-checks
    ... run kernels ...
    report = session.report()       # offline race/lock-order findings
    assert report.clean, report.summary()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.analysis.invariants import (
    CacheStateChecker,
    CqPhaseChecker,
    InvariantChecker,
    InvariantViolation,
    ShareTableChecker,
    SqConformanceChecker,
    standard_checkers,
)
from repro.analysis.races import (
    AnalysisReport,
    DataRaceAnalyzer,
    LockOrderAnalyzer,
    LockOrderInversion,
    RaceReport,
    analyze,
)
from repro.sim.trace import EventLog

__all__ = [
    "AnalysisReport",
    "AnalysisSession",
    "CacheStateChecker",
    "CqPhaseChecker",
    "DataRaceAnalyzer",
    "EventLog",
    "InvariantChecker",
    "InvariantViolation",
    "LockOrderAnalyzer",
    "LockOrderInversion",
    "RaceReport",
    "ShareTableChecker",
    "SqConformanceChecker",
    "analyze",
    "attach",
    "standard_checkers",
]


@dataclass
class AnalysisSession:
    """A host's attached event log plus its live checkers."""

    log: EventLog
    checkers: List[InvariantChecker] = field(default_factory=list)

    def report(self) -> AnalysisReport:
        """Run the offline analyzers over everything recorded so far."""
        return analyze(self.log)

    def events_checked(self) -> int:
        return sum(c.events_checked for c in self.checkers)


def attach(host: Any, maxlen: Optional[int] = 1_000_000) -> AnalysisSession:
    """Wire an :class:`EventLog` into every instrumented component of an
    :class:`~repro.core.host.AgileHost` and subscribe one of each runtime
    invariant checker.  Idempotent per host (re-attaching replaces the
    previous session's log)."""
    log = EventLog(host.sim, maxlen=maxlen)
    for qps in host.queue_pairs:
        for qp in qps:
            qp.sq.log = log
            qp.cq.log = log
            qp.sq.doorbell.log = log
            qp.cq.doorbell.log = log
    host.debugger.log = log
    host.cache.log = log
    if host.share_table is not None:
        host.share_table.log = log
    checkers = standard_checkers(host.queue_pairs)
    for checker in checkers:
        checker.attach(log)
    session = AnalysisSession(log=log, checkers=checkers)
    host.analysis = session
    return session
