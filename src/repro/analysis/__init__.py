"""``repro.analysis`` — protocol invariant checkers, sim-time race and
lock-order analysis, the simulation-safety lint, and the dataflow engine.

Four layers (see DESIGN.md "Invariants & analysis"):

1. *Runtime invariant checkers* (:mod:`repro.analysis.invariants`) attach
   to a live :class:`~repro.core.host.AgileHost` and fail the simulation
   loudly the instant a protocol rule from the paper is broken.
2. *Offline analyzers* (:mod:`repro.analysis.races`) replay the recorded
   event stream after a run and report latent lock-order inversions and
   unsynchronized cache-line accesses even when this seed got lucky.
3. *Static lint* (:mod:`repro.analysis.lint`) enforces syntactic
   simulation-safety rules (AGL001-AGL008) on the source tree without
   running anything.
4. *Dataflow static analysis* (:mod:`repro.analysis.flow`) builds
   per-function CFGs and runs fixed-point rule packs — determinism taint
   (AGL009/AGL010), unit consistency (AGL011), lock-release path checking
   with a static lock-order graph (AGL012) — reporting as text or SARIF
   against a committed baseline (``python -m repro.analysis flow``).
   All static passes share one parsed AST per file via
   :class:`~repro.analysis.source.SourceSession`.

Typical use::

    from repro.analysis import attach

    host = AgileHost(cfg)
    session = attach(host)          # or run pytest --agile-checks
    ... run kernels ...
    report = session.report()       # offline race/lock-order findings
    assert report.clean, report.summary()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.analysis.invariants import (
    CacheStateChecker,
    CqPhaseChecker,
    InvariantChecker,
    InvariantViolation,
    ShareTableChecker,
    SqConformanceChecker,
    standard_checkers,
)
from repro.analysis.races import (
    AnalysisReport,
    DataRaceAnalyzer,
    LockOrderAnalyzer,
    LockOrderInversion,
    RaceReport,
    analyze,
)
from repro.analysis.source import Finding, SourceSession
from repro.sim.trace import EventLog

__all__ = [
    "AnalysisReport",
    "AnalysisSession",
    "CacheStateChecker",
    "CqPhaseChecker",
    "DataRaceAnalyzer",
    "EventLog",
    "Finding",
    "InvariantChecker",
    "InvariantViolation",
    "LockOrderAnalyzer",
    "LockOrderInversion",
    "RaceReport",
    "ShareTableChecker",
    "SourceSession",
    "SqConformanceChecker",
    "analyze",
    "attach",
    "run_flow",
    "standard_checkers",
]


def run_flow(paths, session=None, packs=None):
    """Convenience re-export of :func:`repro.analysis.flow.run_flow`
    (imported lazily to keep ``repro.analysis`` import time flat)."""
    from repro.analysis.flow import run_flow as _run_flow

    return _run_flow(paths, session=session, packs=packs)


@dataclass
class AnalysisSession:
    """A host's attached event log plus its live checkers."""

    log: EventLog
    checkers: List[InvariantChecker] = field(default_factory=list)

    def report(self) -> AnalysisReport:
        """Run the offline analyzers over everything recorded so far."""
        return analyze(self.log)

    def events_checked(self) -> int:
        return sum(c.events_checked for c in self.checkers)


def attach(host: Any, maxlen: Optional[int] = 1_000_000) -> AnalysisSession:
    """Wire an :class:`EventLog` into every instrumented component of an
    :class:`~repro.core.host.AgileHost` and subscribe one of each runtime
    invariant checker.  Idempotent per host (re-attaching replaces the
    previous session's log)."""
    log = EventLog(host.sim, maxlen=maxlen)
    for qps in host.queue_pairs:
        for qp in qps:
            qp.sq.log = log
            qp.cq.log = log
            qp.sq.doorbell.log = log
            qp.cq.doorbell.log = log
    host.debugger.log = log
    host.cache.log = log
    if host.share_table is not None:
        host.share_table.log = log
    checkers = standard_checkers(host.queue_pairs)
    for checker in checkers:
        checker.attach(log)
    session = AnalysisSession(log=log, checkers=checkers)
    host.analysis = session
    return session
