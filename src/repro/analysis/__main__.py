"""``python -m repro.analysis`` — run the analysis stack.

``check`` (default) runs a small representative AGILE workload with every
runtime invariant checker attached, then replays the recorded event stream
through the offline race/lock-order analyzers and prints a report.
``lint`` runs the static simulation-safety lint (same as
``python -m repro.analysis.lint``).
``flow`` runs the CFG/dataflow static analysis (determinism taint,
unit consistency, lock-release paths) with SARIF and baseline support
(same as ``python -m repro.analysis.flow``; see ``flow --help``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np


def _smoke_check(threads: int, requests: int, verbose: bool) -> int:
    from repro.analysis import attach
    from repro.config import CacheConfig, SsdConfig, SystemConfig
    from repro.core import AgileHost, AgileLockChain
    from repro.gpu import KernelSpec, LaunchConfig

    cfg = SystemConfig(
        cache=CacheConfig(num_lines=64, ways=8),
        ssds=(SsdConfig(name="ssd0", capacity_bytes=1 << 26, channels=8),),
        queue_pairs=2,
        queue_depth=16,
    )
    host = AgileHost(cfg)
    session = attach(host)
    pages = 4 * threads
    data = np.arange(pages * 1024, dtype=np.uint32)
    host.load_data(0, 0, data)

    def body(tc, ctrl):
        chain = AgileLockChain(f"check.t{tc.tid}")
        for i in range(requests):
            lba = (tc.tid * 7 + i * 3) % pages
            line = yield from ctrl.read_page(tc, chain, 0, lba)
            yield from ctrl.cache.read_line(tc, line, 64)
            ctrl.cache.unpin(line)

    kernel = KernelSpec(name="analysis_check", body=body)
    with host:
        duration = host.run_kernel(
            kernel, LaunchConfig(max(1, threads // 32), min(threads, 32))
        )
    report = session.report()
    print(
        f"smoke workload: {threads} threads x {requests} cached reads, "
        f"{duration:.0f} simulated ns"
    )
    print(
        f"runtime checkers: {session.log.emitted} events emitted, "
        f"{session.events_checked()} checks passed"
    )
    for checker in session.checkers:
        print(f"  - {type(checker).__name__}: {checker.events_checked} events")
    print(report.summary())
    if not report.clean:
        return 1
    print("analysis: clean")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AGILE protocol analysis: invariant checkers, "
        "race/lock-order analyzer, simulation-safety lint",
    )
    sub = parser.add_subparsers(dest="command")
    check = sub.add_parser(
        "check", help="run a smoke workload with all checkers attached"
    )
    check.add_argument("--threads", type=int, default=64)
    check.add_argument("--requests", type=int, default=4)
    check.add_argument("--verbose", action="store_true")
    lint = sub.add_parser("lint", help="run the simulation-safety lint")
    lint.add_argument("paths", nargs="*", default=["src/repro"])
    sub.add_parser(
        "flow",
        help="run the CFG/dataflow analysis (AGL009-AGL012); "
        "arguments follow, see `flow --help`",
        add_help=False,
    )
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["flow"]:
        from repro.analysis.flow import main as flow_main

        return flow_main(argv[1:])
    args = parser.parse_args(argv)
    if args.command == "lint":
        from repro.analysis.lint import main as lint_main

        return lint_main(args.paths)
    threads = getattr(args, "threads", 64)
    requests = getattr(args, "requests", 4)
    verbose = getattr(args, "verbose", False)
    return _smoke_check(threads, requests, verbose)


if __name__ == "__main__":
    sys.exit(main())
