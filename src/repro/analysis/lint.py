"""AST-based simulation-safety lint (``python -m repro.analysis.lint``).

A discrete-event simulation has correctness rules ordinary linters do not
know about; this one enforces the repository's:

- **AGL001** — no wall-clock reads (``time.time``, ``time.monotonic``,
  ``datetime.now``, ...) outside ``bench/`` and the store's provenance
  stamper (``store/meta.py``): simulated components must derive every
  timestamp from ``sim.now`` or results silently depend on host speed.
- **AGL002** — no unseeded/global randomness (``random`` module,
  ``np.random.<fn>``, bare ``np.random.default_rng()``) outside ``bench/``
  and ``rng.py``: all stochastic behaviour must flow through the named
  :class:`~repro.sim.rng.RngStreams` so runs are bit-reproducible.
- **AGL003** — no blocking host calls (``time.sleep``, ``subprocess``,
  ``socket``, ``input``, ...) inside generator processes: a real block
  inside a simulated process freezes the event loop instead of advancing
  simulated time.
- **AGL004** — generator processes must yield awaitables; yielding a bare
  number/string/container is always a bug (the engine raises ``SimError``
  at runtime; the lint catches it before a run does).
- **AGL005** — attribute accesses on config objects (``cfg.*``, ``*_cfg.*``,
  ``api.*``) must name fields that actually exist on some
  :mod:`repro.config` dataclass — typos otherwise surface only on the
  first simulated access, possibly hours into a sweep.
- **AGL006** — no calls to scheduler internals (``._schedule``,
  ``._enqueue``, ``._schedule_resume``, ``._schedule_throw``, ``._step_send``,
  ``._step_throw``) outside ``sim/engine.py``: model code must go through
  the narrow scheduler-facing API (``schedule_immediate`` /
  ``schedule_at`` / ``spawn`` / event triggers) so the engine's dispatch
  fast path stays the single owner of queue and sequence-number state.
- **AGL007** — no ad-hoc stats-dict mutations (``stats[...] = ...``,
  ``self.stats = {}``/``defaultdict(...)``) outside ``telemetry/``: every
  metric flows through the typed :mod:`repro.telemetry` instruments
  (``Counter.add`` / ``Gauge.set`` / ``Histogram.observe``) so the unified
  registry stays the single source of truth for ``stats()`` snapshots,
  bench exports, and the Chrome-trace exporters.
- **AGL008** — serving-request terminal states (``COMPLETED`` / ``SHED`` /
  ``ABORTED``) may only be assigned to ``state``/``status`` attributes via
  the serve state machine (``Request.transition`` in
  ``serve/request.py``): ad-hoc terminal mutations would bypass the
  legal-transition check and the exactly-one-terminal accounting the SLO
  reports and property tests rely on.
- **AGL013** — no hand-rolled device-index arithmetic (``x % num_ssds``,
  ``x % len(cfg.ssds)``, ...) outside ``repro/placement/``: physical
  ``(ssd_idx, device_lba)`` coordinates come from a
  :class:`~repro.placement.PlacementPolicy` (or its documented compat
  shims ``interleaved``/``round_robin``), so an array-layout change is a
  policy swap, not a grep across every workload.
- **AGL014** — no direct mutation of the flash page store (``._pages``
  assignment, ``del``, or mutator calls like ``.pop()``/``.update()``)
  outside ``repro/nvme/ftl.py``: the FTL owns physical page contents, and
  every change must flow through its program/invalidate/erase paths so
  the L2P map, per-block valid counts, and the WAF/conservation ledger
  (``host_programs + gc_programs + seeded_pages - invalidations ==
  live_pages``) cannot drift from the stored bytes.
- **AGL015** — tenant classes come from the registry
  (``serve/registry.py``): no ``RequestClass(...)`` construction and no
  string-literal label passed to ``tenant_class(...)`` anywhere else.
  Ad-hoc classes and free-floating label strings drift from the
  registry's canonical names, and the tenancy layer (WFQ shares, SLO
  reports, store axes) joins on those names — a typo would silently
  become a new tenant instead of an error.

Exit status is 0 when clean, 1 when any violation is found.
"""

from __future__ import annotations

import argparse
import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set

from repro.analysis.source import SourceFile, SourceSession, iter_python_files

__all__ = ["Violation", "iter_python_files", "lint_files", "lint_paths", "main"]

WALLCLOCK_CALLS = {
    "time.time",
    "time.monotonic",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
}

BLOCKING_CALLS = {"time.sleep", "os.system", "input", "breakpoint"}
BLOCKING_PREFIXES = ("subprocess.", "socket.", "requests.", "urllib.")

#: ``np.random.<fn>`` calls that hit numpy's unseeded global state.
UNSEEDED_NP_FUNCS = {
    "rand", "randn", "random", "randint", "random_sample", "choice",
    "shuffle", "permutation", "seed", "bytes", "normal", "uniform",
}

CONFIG_BASE_NAMES = {"cfg", "config", "api"}

#: Engine-private scheduling entry points (AGL006).  Only sim/engine.py may
#: touch these; everything else uses the narrow scheduler-facing API.
SCHEDULER_INTERNALS = {
    "_schedule",
    "_enqueue",
    "_schedule_resume",
    "_schedule_throw",
    "_step_send",
    "_step_throw",
}

#: Attribute/variable names that hold metric state (AGL007): mutating them
#: as raw dicts bypasses the typed :mod:`repro.telemetry` registry.
STATS_DICT_NAMES = {"stats", "_stats", "counters", "_counters"}

#: Constructors whose result, assigned to a stats-named attribute, is an
#: ad-hoc metrics dict (AGL007).
DICT_CONSTRUCTORS = {"dict", "defaultdict", "collections.defaultdict"}

#: Serving-request terminal state names (AGL008): assigning one of these
#: enum members to a state/status attribute outside the serve state machine
#: bypasses Request.transition's legality and accounting guarantees.
SERVE_TERMINAL_NAMES = {"COMPLETED", "SHED", "ABORTED"}

#: Attribute names AGL008 guards against ad-hoc terminal assignment.
STATE_ATTR_NAMES = {"state", "_state", "status", "_status"}

#: Names that hold an SSD-array size (AGL013): ``x % <one of these>``
#: fabricates a device index by hand, bypassing the placement layer.
SSD_COUNT_NAMES = {"num_ssds", "n_ssds", "nssds", "ssd_count", "num_devices"}

#: The FTL's physical page store attribute (AGL014) and the dict methods
#: that mutate it in place.
PAGE_STORE_NAME = "_pages"
PAGE_STORE_MUTATORS = {"pop", "popitem", "update", "setdefault", "clear"}

#: Tenant-class construction entry points (AGL015): ``RequestClass`` may
#: only be constructed in the registry, and ``tenant_class`` must be
#: called with a registry constant, never a string literal.
TENANT_CLASS_CTOR = "RequestClass"
TENANT_CLASS_FACTORY = "tenant_class"


@dataclass(frozen=True)
class Violation:
    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _config_attr_names() -> Set[str]:
    """Every legal attribute name on the repro.config namespace: module
    members plus fields/properties/methods of each config dataclass."""
    import dataclasses

    from repro import config as config_mod

    names: Set[str] = {n for n in dir(config_mod) if not n.startswith("_")}
    for obj in vars(config_mod).values():
        if isinstance(obj, type) and dataclasses.is_dataclass(obj):
            for f in dataclasses.fields(obj):
                names.add(f.name)
            for attr in dir(obj):
                if not attr.startswith("_"):
                    names.add(attr)
    return names


def _dotted(node: ast.AST) -> Optional[str]:
    """Reconstruct a dotted name from a Name/Attribute chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_generator(fn: ast.AST) -> bool:
    """True if the function's own body (not nested defs) yields."""
    return any(
        isinstance(n, (ast.Yield, ast.YieldFrom))
        for n in _own_nodes(fn)
    )


def _own_nodes(fn: ast.AST) -> Iterable[ast.AST]:
    """Nodes belonging to ``fn`` itself, not to nested function defs."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class _FileLinter:
    def __init__(
        self,
        path: Path,
        tree: ast.Module,
        config_attrs: Set[str],
        display_path: str,
    ):
        self.path = path
        self.display = display_path
        self.tree = tree
        self.config_attrs = config_attrs
        self.violations: List[Violation] = []
        parts = path.as_posix().split("/")
        #: ``bench`` measures host wall time legitimately, and the
        #: store's ``meta.py`` is the sanctioned provenance stamper
        #: (``generated_unix``/``git_sha`` describe when a run happened
        #: and never feed simulated time); ``rng.py`` is the
        #: seeded-stream factory itself.  Seeded calls like
        #: ``np.random.default_rng(seed)`` pass everywhere.
        self.wallclock_ok = "bench" in parts or (
            "store" in parts and path.name == "meta.py"
        )
        self.random_ok = "bench" in parts or path.name == "rng.py"
        #: The engine owns its queues; everyone else uses the narrow API.
        self.scheduler_internals_ok = (
            path.name == "engine.py" and "sim" in parts
        )
        #: The telemetry spine owns metric storage; everyone else uses its
        #: typed instruments.
        self.stats_dict_ok = "telemetry" in parts
        #: The serve state machine is the single legal mutation point for
        #: request terminal states.
        self.serve_state_ok = path.name == "request.py" and "serve" in parts
        #: The placement package owns logical->physical mapping arithmetic.
        self.placement_ok = "placement" in parts
        #: The FTL owns the flash page store; everyone else reads pages
        #: through FlashArray/Ftl accessors and writes via programs.
        self.page_store_ok = path.name == "ftl.py" and "nvme" in parts
        #: The tenant registry is the single place classes are minted and
        #: labels are spelled out.
        self.tenant_registry_ok = (
            path.name == "registry.py" and "serve" in parts
        )

    def add(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(
            Violation(
                self.display, getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0), code, message,
            )
        )

    def run(self) -> List[Violation]:
        imports_random = any(
            isinstance(n, ast.Import)
            and any(a.name == "random" for a in n.names)
            or isinstance(n, ast.ImportFrom) and n.module == "random"
            for n in ast.walk(self.tree)
        )
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                self._check_call(node, imports_random)
            elif isinstance(node, ast.Attribute):
                self._check_config_attr(node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                self._check_stats_mutation(node)
                self._check_terminal_state_mutation(node)
                self._check_page_store_mutation(node)
            elif isinstance(node, ast.Delete):
                self._check_page_store_mutation(node)
            elif isinstance(node, ast.BinOp):
                self._check_device_index_arith(node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_generator(node):
                    self._check_generator(node)
        return self.violations

    # -- rules -----------------------------------------------------------------

    def _check_call(self, node: ast.Call, imports_random: bool) -> None:
        if (
            not self.scheduler_internals_ok
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in SCHEDULER_INTERNALS
        ):
            self.add(
                node, "AGL006",
                f"call to scheduler internal .{node.func.attr}() outside "
                f"sim/engine.py; use schedule_immediate/schedule_at/spawn "
                f"or trigger an Event",
            )
        if (
            not self.page_store_ok
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in PAGE_STORE_MUTATORS
            and self._bare_name(node.func.value) == PAGE_STORE_NAME
        ):
            self.add(
                node, "AGL014",
                f"flash page-store mutator _pages.{node.func.attr}() "
                f"outside repro/nvme/ftl.py; page contents change only "
                f"through the FTL's program/invalidate/erase paths",
            )
        self._check_tenant_class(node)
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if not self.wallclock_ok and dotted in WALLCLOCK_CALLS:
            self.add(
                node, "AGL001",
                f"wall-clock call {dotted}() in simulated code; derive "
                f"time from sim.now",
            )
        if not self.random_ok:
            if imports_random and (
                dotted.startswith("random.") or dotted == "random"
            ):
                self.add(
                    node, "AGL002",
                    f"stdlib random call {dotted}() bypasses the seeded "
                    f"RngStreams",
                )
            tail = dotted.split(".")
            if len(tail) >= 2 and tail[-2] == "random" and tail[0] in (
                "np", "numpy"
            ):
                fn = tail[-1]
                if fn in UNSEEDED_NP_FUNCS:
                    self.add(
                        node, "AGL002",
                        f"unseeded numpy global RNG call {dotted}()",
                    )
                elif fn == "default_rng" and not (node.args or node.keywords):
                    self.add(
                        node, "AGL002",
                        "np.random.default_rng() without a seed is "
                        "non-reproducible",
                    )

    def _check_tenant_class(self, node: ast.Call) -> None:
        """AGL015: tenant classes are minted only in serve/registry.py,
        and call sites name them with registry constants, not strings."""
        if self.tenant_registry_ok:
            return
        func_name = self._bare_name(node.func)
        if func_name == TENANT_CLASS_CTOR:
            self.add(
                node, "AGL015",
                "RequestClass(...) constructed outside serve/registry.py; "
                "mint tenant classes with tenant_class(<REGISTRY_CONSTANT>, "
                "...) so names stay canonical",
            )
        elif func_name == TENANT_CLASS_FACTORY and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                self.add(
                    node, "AGL015",
                    f"string-literal tenant label {first.value!r} passed to "
                    f"tenant_class(); use the registry constant so typos "
                    f"fail at import, not at join time",
                )

    def _check_generator(self, fn: ast.AST) -> None:
        for node in _own_nodes(fn):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is None:
                    continue
                if dotted in BLOCKING_CALLS or dotted.startswith(
                    BLOCKING_PREFIXES
                ):
                    self.add(
                        node, "AGL003",
                        f"blocking call {dotted}() inside generator process "
                        f"{fn.name!r} freezes the event loop; yield a "
                        f"Timeout instead",
                    )
            elif isinstance(node, ast.Yield) and node.value is not None:
                value = node.value
                bad = None
                if isinstance(value, ast.Constant) and value.value is not None:
                    bad = f"constant {value.value!r}"
                elif isinstance(value, (ast.List, ast.Dict, ast.Set)):
                    bad = "container literal"
                if bad is not None:
                    self.add(
                        node, "AGL004",
                        f"process {fn.name!r} yields {bad}; processes may "
                        f"only yield Timeout/Event/Process/None awaitables",
                    )

    def _check_stats_mutation(self, node: ast.Assign | ast.AugAssign) -> None:
        if self.stats_dict_ok:
            return
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for tgt in targets:
            if isinstance(tgt, ast.Subscript):
                name = self._bare_name(tgt.value)
                if name in STATS_DICT_NAMES:
                    self.add(
                        tgt, "AGL007",
                        f"ad-hoc stats-dict mutation {name}[...]; use a "
                        f"typed repro.telemetry instrument "
                        f"(Counter.add/Gauge.set/Histogram.observe)",
                    )
            elif isinstance(node, ast.Assign) and isinstance(
                tgt, (ast.Attribute, ast.Name)
            ):
                name = self._bare_name(tgt)
                if name in STATS_DICT_NAMES and self._is_dict_expr(node.value):
                    self.add(
                        tgt, "AGL007",
                        f"{name} assigned a raw dict; metric state belongs "
                        f"in the repro.telemetry registry (trace.group / "
                        f"registry.counter)",
                    )

    def _check_terminal_state_mutation(
        self, node: ast.Assign | ast.AugAssign
    ) -> None:
        """AGL008: terminal request states flow only through the serve
        state machine (``Request.transition``)."""
        if self.serve_state_ok or isinstance(node, ast.AugAssign):
            return
        value = node.value
        if not (
            isinstance(value, ast.Attribute)
            and value.attr in SERVE_TERMINAL_NAMES
        ):
            return
        for tgt in node.targets:
            name = self._bare_name(tgt)
            if name in STATE_ATTR_NAMES:
                self.add(
                    tgt, "AGL008",
                    f"ad-hoc terminal-state assignment {name} = "
                    f"...{value.attr}; request terminal states may only be "
                    f"set via Request.transition (serve/request.py)",
                )

    def _check_page_store_mutation(
        self, node: ast.Assign | ast.AugAssign | ast.Delete
    ) -> None:
        """AGL014: flash page contents change only inside the FTL, where
        the L2P map and the WAF/conservation ledger move with them."""
        if self.page_store_ok:
            return
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.Delete):
            targets = node.targets
        else:
            targets = [node.target]
        for tgt in targets:
            if isinstance(tgt, ast.Subscript):
                name = self._bare_name(tgt.value)
                shape = f"{name}[...]"
            else:
                name = self._bare_name(tgt)
                shape = f"{name} = ..."
            if name == PAGE_STORE_NAME:
                self.add(
                    tgt, "AGL014",
                    f"direct flash page-store mutation ({shape}) outside "
                    f"repro/nvme/ftl.py; page contents change only through "
                    f"the FTL's program/invalidate/erase paths",
                )

    def _check_device_index_arith(self, node: ast.BinOp) -> None:
        """AGL013: physical device indices come from a PlacementPolicy,
        never from modulo arithmetic on the array size."""
        if self.placement_ok or not isinstance(node.op, ast.Mod):
            return
        divisor = node.right
        name = self._bare_name(divisor)
        offender: Optional[str] = None
        if name in SSD_COUNT_NAMES:
            offender = name
        elif (
            isinstance(divisor, ast.Call)
            and _dotted(divisor.func) == "len"
            and len(divisor.args) == 1
        ):
            arg = _dotted(divisor.args[0])
            if arg is not None and arg.split(".")[-1] == "ssds":
                offender = f"len({arg})"
        if offender is not None:
            self.add(
                node, "AGL013",
                f"hand-rolled device index (modulo by {offender}) outside "
                f"repro/placement/; resolve coordinates through a "
                f"PlacementPolicy (or the interleaved/round_robin shims)",
            )

    @staticmethod
    def _bare_name(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    @staticmethod
    def _is_dict_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            return dotted in DICT_CONSTRUCTORS
        return False

    def _check_config_attr(self, node: ast.Attribute) -> None:
        base = node.value
        base_name: Optional[str] = None
        if isinstance(base, ast.Name):
            base_name = base.id
        elif isinstance(base, ast.Attribute):
            base_name = base.attr
        if base_name is None:
            return
        if base_name not in CONFIG_BASE_NAMES and not base_name.endswith(
            "_cfg"
        ):
            return
        if node.attr.startswith("_"):
            return
        if node.attr not in self.config_attrs:
            self.add(
                node, "AGL005",
                f"config attribute {base_name}.{node.attr} does not exist "
                f"on any repro.config dataclass (typo?)",
            )


def _harvest_config_classes(trees: Iterable[ast.Module]) -> Set[str]:
    """Attribute names of every ``*Config``/``*Spec`` class defined in the
    linted files — variables named ``cfg``/``config`` often hold local
    config dataclasses (``LaunchConfig``, workload configs), not just
    :mod:`repro.config` ones."""
    names: Set[str] = set()
    for tree in trees:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not (node.name.endswith("Config") or node.name.endswith("Spec")):
                continue
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    names.add(stmt.target.id)
                elif isinstance(stmt, ast.Assign):
                    for tgt in stmt.targets:
                        if isinstance(tgt, ast.Name):
                            names.add(tgt.id)
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(stmt.name)
    return names


def lint_files(
    files: Sequence[SourceFile], extra: Iterable[Violation] = ()
) -> List[Violation]:
    """Lint already-parsed files (the shared
    :class:`~repro.analysis.source.SourceSession` path: parse once, share
    the ASTs with the flow engine).  Output is sorted by
    (path, line, col, code) so reports diff cleanly."""
    violations: List[Violation] = list(extra)
    config_attrs = _config_attr_names() | _harvest_config_classes(
        f.tree for f in files
    )
    for f in files:
        violations.extend(
            _FileLinter(f.path, f.tree, config_attrs, f.display).run()
        )
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code, v.message))
    return violations


def lint_paths(
    paths: Sequence[str], session: Optional[SourceSession] = None
) -> List[Violation]:
    """Lint files/directories, parsing through ``session`` (a fresh cache
    when not given)."""
    session = session or SourceSession()
    before = len(session.errors)
    files = session.files(paths)
    syntax = [
        Violation(e.path, e.line, e.col, e.rule, e.message)
        for e in session.errors[before:]
    ]
    return lint_files(files, extra=syntax)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="AGILE simulation-safety lint",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    args = parser.parse_args(argv)
    violations = lint_paths(args.paths)
    for v in violations:
        print(v)
    if violations:
        print(f"{len(violations)} violation(s)")
        return 1
    print("simulation-safety lint: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
