"""Shared source loading for every static pass (parse each file once).

All static analyses — the syntactic AGL lint (:mod:`repro.analysis.lint`)
and the dataflow engine (:mod:`repro.analysis.flow`) — operate on the same
parsed ASTs.  Parsing dominates lint wall time, so a shared
:class:`SourceSession` caches one :class:`SourceFile` (text + AST) per
path and every pass reuses it.  The session also owns the canonical
*display path* (repo-relative where possible) that findings, baselines,
and SARIF locations all key on.
"""

from __future__ import annotations

import ast
import hashlib
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding, shared by all rule packs.

    Ordering is (path, line, col, rule, message) so reports and baselines
    diff cleanly across runs — see ISSUE satellite "deterministic output
    ordering".
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule, self.message)

    def fingerprint(self) -> str:
        """Stable identity for baseline matching: rule + path + message,
        *excluding* the line number so unrelated edits above a finding do
        not invalidate the baseline entry."""
        blob = f"{self.rule}|{self.path}|{self.message}".encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def display_path(path: Path) -> str:
    """Canonical path for reports: relative to the repo/cwd when possible
    (so ``src/repro/...`` is stable between CI and local runs), else the
    ``src/repro``-anchored suffix, else the absolute path."""
    resolved = path.resolve()
    cwd = Path.cwd().resolve()
    try:
        return resolved.relative_to(cwd).as_posix()
    except ValueError:
        pass
    parts = resolved.parts
    for i in range(len(parts) - 1):
        if parts[i] == "src" and parts[i + 1] == "repro":
            return "/".join(parts[i:])
    return resolved.as_posix()


@dataclass
class SourceFile:
    """One parsed source file, shared by every analysis pass."""

    path: Path
    display: str
    text: str
    tree: ast.Module

    @property
    def module_name(self) -> str:
        """Dotted module name when the file lives under ``src/``
        (``repro.sim.engine``), else the stem."""
        parts = self.path.resolve().parts
        for i in range(len(parts) - 1):
            if parts[i] == "src" and parts[i + 1] == "repro":
                mod = list(parts[i + 1:])
                mod[-1] = Path(mod[-1]).stem
                if mod[-1] == "__init__":
                    mod.pop()
                return ".".join(mod)
        return self.path.stem


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` paths."""
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


class SourceSession:
    """Parse-once AST cache shared across analysis passes.

    Syntax errors become ``AGL000`` findings (recorded once per path) so
    every pass reports them identically without re-parsing.
    """

    def __init__(self) -> None:
        self._cache: Dict[Path, Optional[SourceFile]] = {}
        self.errors: List[Finding] = []
        self.parses = 0

    def load(self, path: Path) -> Optional[SourceFile]:
        key = Path(os.path.normpath(path))
        if key in self._cache:
            return self._cache[key]
        display = display_path(key)
        source: Optional[SourceFile]
        try:
            text = key.read_text(encoding="utf-8")
            tree = ast.parse(text)
            source = SourceFile(path=key, display=display, text=text, tree=tree)
            self.parses += 1
        except SyntaxError as exc:
            self.errors.append(
                Finding(display, exc.lineno or 0, 0, "AGL000",
                        f"syntax error: {exc.msg}")
            )
            source = None
        self._cache[key] = source
        return source

    def files(self, paths: Sequence[str]) -> List[SourceFile]:
        out: List[SourceFile] = []
        for path in iter_python_files(paths):
            source = self.load(path)
            if source is not None:
                out.append(source)
        return out


def dotted_name(node: ast.AST) -> Optional[str]:
    """Reconstruct ``a.b.c`` from a Name/Attribute chain (else None)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """The one canonical report order: (path, line, col, rule, message)."""
    return sorted(findings, key=Finding.sort_key)


__all__ = [
    "Finding",
    "SourceFile",
    "SourceSession",
    "display_path",
    "dotted_name",
    "iter_python_files",
    "sort_findings",
]
