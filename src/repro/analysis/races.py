"""Offline happens-before race and lock-order analysis (paper §3.5).

Both analyzers replay the recorded :class:`~repro.sim.trace.EventLog`
stream after a run, so they report *potential* bugs even when the
particular seed's interleaving happened to be benign:

- :class:`LockOrderAnalyzer` builds the lock-acquisition-order graph over
  every :class:`~repro.core.locks.AgileLockChain`/``AgileLock`` operation.
  A cycle in that graph means two chains acquired the same locks in
  opposite orders — a latent deadlock that a different interleaving can
  trigger even though this run completed.  This is strictly stronger than
  the runtime :class:`~repro.core.locks.LockDebugger`, which only fires
  when the inversion actually blocks.
- :class:`DataRaceAnalyzer` applies an Eraser-style lockset discipline to
  cache-line data copies: AGILE's synchronization rule for line data is
  the *pin* (§2.3.2 — a pin is held across every bounded copy).  Two
  accesses to the same line incarnation from different threads, at least
  one a write and at least one unpinned, are an unsynchronized read/write
  pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.sim.trace import EventLog, TraceEvent


@dataclass(frozen=True)
class LockOrderInversion:
    """Two locks acquired in opposite orders by different chains."""

    lock_a: str
    lock_b: str
    #: Chains that acquired a-then-b, with the sim time of the witness.
    forward_chains: Tuple[Tuple[str, float], ...]
    #: Chains that acquired b-then-a.
    reverse_chains: Tuple[Tuple[str, float], ...]

    def describe(self) -> str:
        fwd = ", ".join(f"{c} (t={t:.0f})" for c, t in self.forward_chains)
        rev = ", ".join(f"{c} (t={t:.0f})" for c, t in self.reverse_chains)
        return (
            f"lock-order inversion between {self.lock_a!r} and "
            f"{self.lock_b!r}: [{fwd}] acquired {self.lock_a} -> "
            f"{self.lock_b} but [{rev}] acquired {self.lock_b} -> "
            f"{self.lock_a}"
        )


@dataclass(frozen=True)
class RaceReport:
    """An unsynchronized read/write pair on one cache-line incarnation."""

    line: int
    tag: Optional[tuple]
    first: Tuple[int, str, bool, float]   # (tid, rw, pinned, t)
    second: Tuple[int, str, bool, float]

    def describe(self) -> str:
        def fmt(acc: Tuple[int, str, bool, float]) -> str:
            tid, rw, pinned, t = acc
            kind = "write" if rw == "w" else "read"
            pin = "pinned" if pinned else "UNPINNED"
            return f"t{tid} {kind} ({pin}, t={t:.0f})"

        return (
            f"potential race on cache line {self.line} (tag {self.tag}): "
            f"{fmt(self.first)} vs {fmt(self.second)}"
        )


class LockOrderAnalyzer:
    """Builds the acquisition-order graph and reports inversions."""

    def __init__(self) -> None:
        #: (held, acquired) -> witnesses {(chain, t)}.
        self._edges: Dict[Tuple[str, str], Set[Tuple[str, float]]] = {}
        self.acquisitions = 0

    def feed(self, events: Iterable[TraceEvent]) -> "LockOrderAnalyzer":
        for event in events:
            if event.kind != "lock.acquire":
                continue
            self.acquisitions += 1
            target = event["lock"]
            chain = event["chain"]
            for held in event.get("held_before", ()):
                if held == target:
                    continue
                self._edges.setdefault((held, target), set()).add(
                    (chain, event.t)
                )
        return self

    def inversions(self) -> List[LockOrderInversion]:
        """Pairwise inversions: edges present in both directions."""
        found: List[LockOrderInversion] = []
        seen: Set[Tuple[str, str]] = set()
        for (a, b), forward in sorted(self._edges.items()):
            if (b, a) in seen or (a, b) in seen:
                continue
            reverse = self._edges.get((b, a))
            if not reverse:
                continue
            seen.add((a, b))
            found.append(
                LockOrderInversion(
                    lock_a=a,
                    lock_b=b,
                    forward_chains=tuple(sorted(forward)),
                    reverse_chains=tuple(sorted(reverse)),
                )
            )
        return found

    def edge_pairs(self) -> Set[Tuple[str, str]]:
        """The dynamic acquisition-order edges (held, acquired) — the
        graph the static :mod:`repro.analysis.lockflow` pass
        cross-validates against."""
        return set(self._edges)

    def cycles(self) -> List[List[str]]:
        """Simple cycles in the acquisition-order graph (covers chains of
        length > 2 that pairwise inspection misses: A->B->C->A).

        Output is canonical — each cycle rotated so its smallest node
        comes first, deduplicated, and the list sorted — so reports and
        committed baselines diff cleanly between runs regardless of event
        insertion order.
        """
        graph: Dict[str, Set[str]] = {}
        for a, b in self._edges:
            graph.setdefault(a, set()).add(b)
        out: List[List[str]] = []
        seen: Set[Tuple[str, ...]] = set()
        visiting: List[str] = []
        state: Dict[str, int] = {}  # 0 unvisited / 1 on stack / 2 done

        def dfs(node: str) -> None:
            state[node] = 1
            visiting.append(node)
            for nxt in sorted(graph.get(node, ())):
                if state.get(nxt, 0) == 1:
                    nodes = visiting[visiting.index(nxt):]
                    pivot = nodes.index(min(nodes))
                    nodes = nodes[pivot:] + nodes[:pivot]
                    key = tuple(nodes)
                    if key not in seen:
                        seen.add(key)
                        out.append(nodes + [nodes[0]])
                elif state.get(nxt, 0) == 0:
                    dfs(nxt)
            visiting.pop()
            state[node] = 2

        for node in sorted(graph):
            if state.get(node, 0) == 0:
                dfs(node)
        out.sort()
        return out


class DataRaceAnalyzer:
    """Pin-discipline (lockset-style) checking of cache data accesses."""

    def __init__(self) -> None:
        #: line index -> current incarnation counter (bumped on re-claim).
        self._generation: Dict[int, int] = {}
        #: (line, generation) -> accesses [(tid, rw, pinned, t)].
        self._accesses: Dict[
            Tuple[int, int], List[Tuple[int, str, bool, float]]
        ] = {}
        self._tags: Dict[Tuple[int, int], Optional[tuple]] = {}

    def feed(self, events: Iterable[TraceEvent]) -> "DataRaceAnalyzer":
        for event in events:
            if event.kind == "cache.state":
                # A transition to BUSY re-purposes the line for a new tag:
                # accesses to different incarnations can never race.
                if getattr(event["new"], "name", "") == "BUSY":
                    line = event["line"]
                    self._generation[line] = self._generation.get(line, 0) + 1
            elif event.kind == "cache.access":
                line = event["line"]
                gen = self._generation.get(line, 0)
                key = (line, gen)
                self._accesses.setdefault(key, []).append(
                    (event["tid"], event["rw"], event["pinned"], event.t)
                )
                self._tags[key] = event.get("tag")
        return self

    def races(self) -> List[RaceReport]:
        found: List[RaceReport] = []
        for key, accesses in sorted(self._accesses.items()):
            line, _gen = key
            reported: Set[Tuple[int, int]] = set()
            for i, first in enumerate(accesses):
                for second in accesses[i + 1:]:
                    if first[0] == second[0]:
                        continue  # same thread
                    if first[1] != "w" and second[1] != "w":
                        continue  # read/read
                    if first[2] and second[2]:
                        continue  # both pinned: synchronized by discipline
                    pair = (first[0], second[0])
                    if pair in reported:
                        continue
                    reported.add(pair)
                    found.append(
                        RaceReport(
                            line=line, tag=self._tags.get(key),
                            first=first, second=second,
                        )
                    )
        return found


@dataclass
class AnalysisReport:
    """Combined offline findings for one recorded run."""

    inversions: List[LockOrderInversion] = field(default_factory=list)
    cycles: List[List[str]] = field(default_factory=list)
    races: List[RaceReport] = field(default_factory=list)
    events_seen: int = 0

    @property
    def clean(self) -> bool:
        return not (self.inversions or self.cycles or self.races)

    def summary(self) -> str:
        lines = [
            f"analyzed {self.events_seen} events: "
            f"{len(self.inversions)} lock-order inversion(s), "
            f"{len(self.cycles)} acquisition cycle(s), "
            f"{len(self.races)} potential data race(s)"
        ]
        for inv in self.inversions:
            lines.append(f"  - {inv.describe()}")
        for cyc in self.cycles:
            lines.append(f"  - acquisition cycle: {' -> '.join(cyc)}")
        for race in self.races:
            lines.append(f"  - {race.describe()}")
        return "\n".join(lines)


def analyze(log: EventLog) -> AnalysisReport:
    """Run both offline analyzers over a recorded log."""
    events = list(log.events())
    lock = LockOrderAnalyzer().feed(events)
    data = DataRaceAnalyzer().feed(events)
    return AnalysisReport(
        inversions=lock.inversions(),
        cycles=lock.cycles(),
        races=data.races(),
        events_seen=len(events),
    )
