"""Determinism taint analysis (AGL009/AGL010).

Flow-sensitive, interprocedural-by-summary taint tracking of values that
can differ between two runs of the same seed:

- **value nondeterminism** (``nd`` labels): ``id()``, ``hash()``,
  ``dict.popitem()``, ``set.pop()``, wall-clock reads, unseeded RNG calls,
  ``os.urandom``/``uuid`` — anything whose *value* is not a pure function
  of the seed;
- **order nondeterminism** (``set`` / ``ord`` labels): iterating a
  ``set``/``frozenset`` binds loop variables in an interpreter-dependent
  order; ``sorted()`` (and ``min``/``max``) launder it.

**AGL009** fires when a tainted value reaches a determinism-critical sink:
scheduler delays and callback arguments (``schedule_at`` /
``schedule_immediate`` / ``call_at`` / ``timeout`` / ``Timeout``), event
payloads (``.trigger`` / ``.succeed``), or :class:`~repro.sim.rng.RngStreams`
seeds and stream names.  Scheduling *from inside* unordered iteration also
fires: same-time events are FIFO by sequence number, so insertion order is
observable.

**AGL010** fires on order-dependent float accumulation: ``acc += f(x)``
(or ``acc = acc + ...`` / ``sum(...)``) over an unordered collection —
non-associative floating-point reduction makes the total depend on
iteration order even though the element set is deterministic.

Interprocedural: every function in the analyzed set gets a summary
(labels of its return value as a function of its parameters, plus which
parameters it forwards into sinks), iterated to a fixed point over the
name-resolved call graph, so a leak through one or more helper levels —
invisible to the syntactic AGL001/AGL002 rules — is still caught at the
call site.  Calls that cannot be uniquely resolved by name propagate
their arguments' value labels and are otherwise assumed benign
(documented unsoundness; see DESIGN.md).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import ForBind, Item, Test, WithBind, build_cfg, iter_functions
from repro.analysis.dataflow import Env, ForwardSolver
from repro.analysis.source import Finding, SourceFile, dotted_name

# Label kinds: ("nd", desc) value nondeterminism; ("set", desc) unordered
# collection; ("ord", desc) value bound by unordered iteration;
# ("param", index) symbolic parameter taint for summaries.
Label = Tuple[str, object]
Taint = FrozenSet[Label]

EMPTY: Taint = frozenset()

#: Wall-clock/value-entropy sources by dotted call name.
ND_CALLS: Dict[str, str] = {
    "time.time": "wall clock (time.time)",
    "time.monotonic": "wall clock (time.monotonic)",
    "time.perf_counter": "wall clock (time.perf_counter)",
    "time.perf_counter_ns": "wall clock (time.perf_counter_ns)",
    "time.process_time": "wall clock (time.process_time)",
    "datetime.now": "wall clock (datetime.now)",
    "datetime.utcnow": "wall clock (datetime.utcnow)",
    "datetime.datetime.now": "wall clock (datetime.now)",
    "datetime.datetime.utcnow": "wall clock (datetime.utcnow)",
    "os.urandom": "os.urandom",
    "uuid.uuid1": "uuid.uuid1",
    "uuid.uuid4": "uuid.uuid4",
    "secrets.token_bytes": "secrets",
    "secrets.token_hex": "secrets",
    "secrets.randbelow": "secrets",
}

#: ``np.random.<fn>`` functions that hit the unseeded global generator.
UNSEEDED_NP_FUNCS = {
    "rand", "randn", "random", "randint", "random_sample", "choice",
    "shuffle", "permutation", "bytes", "normal", "uniform",
}

#: Scheduler/event/seed sinks by (attribute or bare) callee name.
SINKS: Dict[str, str] = {
    "schedule_at": "schedule_at() delay/argument",
    "schedule_immediate": "schedule_immediate() argument",
    "call_at": "call_at() delay",
    "timeout": "timeout() delay",
    "Timeout": "Timeout() delay",
    "trigger": "event payload (.trigger)",
    "succeed": "event payload (.succeed)",
    "RngStreams": "RngStreams seed",
    "fork": "RngStreams.fork salt",
    "stream": "RngStreams stream name",
}

#: Sinks that are order-sensitive even for deterministic values: same-time
#: events dispatch FIFO by insertion sequence, so *calling* them in an
#: unordered-iteration order is observable.
ORDER_SENSITIVE_SINKS = {
    "schedule_at", "schedule_immediate", "call_at", "timeout", "Timeout",
    "trigger", "succeed",
}

#: Receiver-method calls that *must not* resolve to repo functions (they
#: are protocol verbs on many classes).
_NEVER_RESOLVE = set(SINKS) | {"pop", "popitem", "get", "add", "append"}


def _kinds(taint: Taint) -> Set[str]:
    return {kind for kind, _ in taint}


def _strip(taint: Taint, *kinds: str) -> Taint:
    return frozenset(lb for lb in taint if lb[0] not in kinds)


def _descs(taint: Taint, kind: str) -> List[str]:
    return sorted(str(desc) for k, desc in taint if k == kind)


@dataclass(frozen=True)
class Summary:
    """Interprocedural function summary."""

    #: Labels of the return value; ``("param", i)`` means "whatever the
    #: i-th argument carried".
    return_labels: Taint = EMPTY
    #: Parameter index -> sink description it (transitively) reaches.
    sink_params: Tuple[Tuple[int, str], ...] = ()


@dataclass
class FunctionInfo:
    name: str
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    file: SourceFile
    params: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        args = self.node.args
        self.params = [a.arg for a in args.posonlyargs + args.args]
        if self.params and self.params[0] in ("self", "cls"):
            self.params = self.params[1:]

    def param_index(self, name: str) -> Optional[int]:
        try:
            return self.params.index(name)
        except ValueError:
            return None


class TaintAnalyzer:
    """AGL009/AGL010 over a set of parsed files."""

    MAX_ROUNDS = 8

    def __init__(self, files: Sequence[SourceFile]):
        self.files = list(files)
        self.functions: List[FunctionInfo] = []
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        for f in self.files:
            for fn in iter_functions(f.tree):
                qual = f"{f.display}:{fn.name}:{fn.lineno}"
                info = FunctionInfo(fn.name, qual, fn, f)
                self.functions.append(info)
                self._by_name.setdefault(fn.name, []).append(info)
        self.summaries: Dict[str, Summary] = {
            info.qualname: Summary() for info in self.functions
        }

    # -- public ---------------------------------------------------------------

    def run(self) -> List[Finding]:
        for _ in range(self.MAX_ROUNDS):
            changed = False
            for info in self.functions:
                summary, _ = self._analyze(info, emit=False)
                if summary != self.summaries[info.qualname]:
                    self.summaries[info.qualname] = summary
                    changed = True
            if not changed:
                break
        findings: List[Finding] = []
        for info in self.functions:
            _, found = self._analyze(info, emit=True)
            findings.extend(found)
        return findings

    # -- resolution -----------------------------------------------------------

    def _resolve(self, func: ast.expr) -> Optional[FunctionInfo]:
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None or name in _NEVER_RESOLVE:
            return None
        candidates = self._by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    # -- per-function analysis ------------------------------------------------

    def _analyze(
        self, info: FunctionInfo, emit: bool
    ) -> Tuple[Summary, List[Finding]]:
        graph = build_cfg(info.node)
        findings: List[Finding] = []
        return_labels: Set[Label] = set()
        sink_params: Dict[int, str] = {}
        seen: Set[Tuple[int, int, str, str]] = set()
        display = info.file.display

        def add_finding(node: ast.AST, rule: str, message: str) -> None:
            key = (
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                rule,
                message,
            )
            if key in seen:
                return
            seen.add(key)
            findings.append(Finding(display, key[0], key[1], rule, message))

        def record_sink_param(index: int, desc: str) -> None:
            sink_params.setdefault(index, desc)

        def eval_expr(
            node: Optional[ast.expr], env: Env[Taint], reporting: bool
        ) -> Taint:
            if node is None:
                return EMPTY
            if isinstance(node, ast.Name):
                return env.get(node.id, EMPTY)
            if isinstance(node, ast.Constant):
                return EMPTY
            if isinstance(node, ast.Call):
                return eval_call(node, env, reporting)
            if isinstance(node, ast.BinOp):
                return eval_expr(node.left, env, reporting) | eval_expr(
                    node.right, env, reporting
                )
            if isinstance(node, ast.BoolOp):
                out: Taint = EMPTY
                for v in node.values:
                    out |= eval_expr(v, env, reporting)
                return out
            if isinstance(node, ast.UnaryOp):
                return eval_expr(node.operand, env, reporting)
            if isinstance(node, ast.Compare):
                out = eval_expr(node.left, env, reporting)
                for c in node.comparators:
                    out |= eval_expr(c, env, reporting)
                return out
            if isinstance(node, ast.IfExp):
                return (
                    eval_expr(node.test, env, reporting)
                    | eval_expr(node.body, env, reporting)
                    | eval_expr(node.orelse, env, reporting)
                )
            if isinstance(node, (ast.Set,)):
                out = frozenset({("set", "set literal")})
                for e in node.elts:
                    out |= eval_expr(e, env, reporting)
                return out
            if isinstance(node, (ast.List, ast.Tuple)):
                out = EMPTY
                for e in node.elts:
                    out |= eval_expr(e, env, reporting)
                return out
            if isinstance(node, ast.Dict):
                out = EMPTY
                for v in node.values:
                    out |= eval_expr(v, env, reporting)
                return out
            if isinstance(node, ast.Subscript):
                return eval_expr(node.value, env, reporting) | eval_expr(
                    node.slice, env, reporting
                )
            if isinstance(node, ast.Starred):
                return eval_expr(node.value, env, reporting)
            if isinstance(node, ast.Attribute):
                # Attribute loads are untracked state (no heap model); the
                # receiver's labels do not transfer to the attribute value.
                return EMPTY
            if isinstance(node, (ast.SetComp, ast.ListComp, ast.GeneratorExp)):
                return eval_comp(node, env, reporting)
            if isinstance(node, ast.DictComp):
                scratch = bind_comp(node.generators, env, reporting)
                return eval_expr(node.key, scratch, reporting) | eval_expr(
                    node.value, scratch, reporting
                )
            if isinstance(node, (ast.Await, ast.YieldFrom)):
                return eval_expr(node.value, env, reporting)
            if isinstance(node, ast.Yield):
                if node.value is not None:
                    eval_expr(node.value, env, reporting)
                return EMPTY
            if isinstance(node, ast.JoinedStr):
                out = EMPTY
                for v in node.values:
                    if isinstance(v, ast.FormattedValue):
                        out |= eval_expr(v.value, env, reporting)
                return out
            if isinstance(node, ast.NamedExpr):
                val = eval_expr(node.value, env, reporting)
                if isinstance(node.target, ast.Name):
                    env[node.target.id] = val
                return val
            if isinstance(node, ast.Lambda):
                return EMPTY
            return EMPTY

        def element_labels(iter_taint: Taint) -> Taint:
            """Labels a loop variable inherits from its iterable: value
            labels pass through; ``set`` order labels become ``ord``."""
            out = set(_strip(iter_taint, "set"))
            for kind, desc in iter_taint:
                if kind == "set":
                    out.add(("ord", desc))
            return frozenset(out)

        def bind_comp(
            generators: Sequence[ast.comprehension],
            env: Env[Taint],
            reporting: bool,
        ) -> Env[Taint]:
            scratch = dict(env)
            for gen in generators:
                it = eval_expr(gen.iter, scratch, reporting)
                bind_target(gen.target, element_labels(it), scratch)
                for if_ in gen.ifs:
                    eval_expr(if_, scratch, reporting)
            return scratch

        def eval_comp(
            node: ast.SetComp | ast.ListComp | ast.GeneratorExp,
            env: Env[Taint],
            reporting: bool,
        ) -> Taint:
            scratch = bind_comp(node.generators, env, reporting)
            out = eval_expr(node.elt, scratch, reporting)
            if isinstance(node, ast.SetComp):
                out |= frozenset({("set", "set comprehension")})
            else:
                # Order of a list/generator built from a set is itself
                # unordered: keep the iterable's set labels.
                for gen in node.generators:
                    out |= frozenset(
                        lb
                        for lb in eval_expr(gen.iter, env, reporting)
                        if lb[0] == "set"
                    )
            return out

        def bind_target(
            target: ast.expr, taint: Taint, env: Env[Taint]
        ) -> None:
            if isinstance(target, ast.Name):
                env[target.id] = taint
            elif isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    bind_target(elt, taint, env)
            elif isinstance(target, ast.Starred):
                bind_target(target.value, taint, env)
            # Attribute/Subscript stores leave the (untracked) heap alone.

        def check_sink(
            call: ast.Call,
            sink_name: str,
            sink_desc: str,
            env: Env[Taint],
            reporting: bool,
        ) -> None:
            order_sensitive = sink_name in ORDER_SENSITIVE_SINKS
            args: List[Tuple[str, ast.expr]] = [
                (f"argument {i + 1}", a) for i, a in enumerate(call.args)
            ] + [(f"argument {kw.arg!r}", kw.value) for kw in call.keywords]
            for pos, arg in args:
                taint = eval_expr(arg, env, reporting)
                if not reporting:
                    for kind, desc in taint:
                        if kind == "param" and isinstance(desc, int):
                            record_sink_param(desc, sink_desc)
                    continue
                nd = _descs(taint, "nd")
                if nd:
                    add_finding(
                        call, "AGL009",
                        f"nondeterministic value ({nd[0]}) flows into "
                        f"{sink_desc} ({pos})",
                    )
                elif order_sensitive and _descs(taint, "ord"):
                    add_finding(
                        call, "AGL009",
                        f"{sink_desc} ({pos}) depends on iteration order of "
                        f"an unordered collection "
                        f"({_descs(taint, 'ord')[0]}); same-time events "
                        f"dispatch in insertion order",
                    )

        def eval_call(
            call: ast.Call, env: Env[Taint], reporting: bool
        ) -> Taint:
            dotted = dotted_name(call.func)
            bare = (
                call.func.id
                if isinstance(call.func, ast.Name)
                else call.func.attr
                if isinstance(call.func, ast.Attribute)
                else None
            )
            arg_taint: Taint = EMPTY
            for a in call.args:
                arg_taint |= eval_expr(a, env, reporting)
            for kw in call.keywords:
                arg_taint |= eval_expr(kw.value, env, reporting)
            recv_taint: Taint = EMPTY
            if isinstance(call.func, ast.Attribute):
                recv_taint = eval_expr(call.func.value, env, reporting)

            # -- sources -----------------------------------------------------
            if bare == "id" and isinstance(call.func, ast.Name):
                return frozenset({("nd", "id()")})
            if bare == "hash" and isinstance(call.func, ast.Name):
                return arg_taint | frozenset(
                    {("nd", "hash() (PYTHONHASHSEED-dependent)")}
                )
            if bare == "popitem":
                return frozenset({("nd", "dict.popitem()")})
            if (
                bare == "pop"
                and not call.args
                and not call.keywords
                and "set" in _kinds(recv_taint)
            ):
                return frozenset({("nd", "set.pop()")})
            if dotted is not None:
                if dotted in ND_CALLS:
                    return frozenset({("nd", ND_CALLS[dotted])})
                parts = dotted.split(".")
                if dotted.startswith("random.") or dotted == "random":
                    return frozenset({("nd", f"unseeded {dotted}()")})
                if (
                    len(parts) >= 2
                    and parts[-2] == "random"
                    and parts[0] in ("np", "numpy")
                ):
                    if parts[-1] in UNSEEDED_NP_FUNCS:
                        return frozenset({("nd", f"unseeded {dotted}()")})
                    if parts[-1] == "default_rng" and not (
                        call.args or call.keywords
                    ):
                        return frozenset(
                            {("nd", "np.random.default_rng() without seed")}
                        )

            # -- constructors / launderers ----------------------------------
            if bare in ("set", "frozenset") and isinstance(call.func, ast.Name):
                return arg_taint | frozenset({("set", f"{bare}()")})
            if bare == "sorted" and isinstance(call.func, ast.Name):
                return _strip(arg_taint, "set", "ord")
            if bare in ("min", "max") and isinstance(call.func, ast.Name):
                return _strip(arg_taint, "set", "ord")
            if bare == "sum" and isinstance(call.func, ast.Name):
                if reporting and call.args:
                    first = eval_expr(call.args[0], env, reporting)
                    if "set" in _kinds(first):
                        add_finding(
                            call, "AGL010",
                            f"sum() over an unordered collection "
                            f"({_descs(first, 'set')[0]}): float accumulation "
                            f"order is nondeterministic; sort first",
                        )
                return _strip(arg_taint, "set", "ord")
            if bare in ("len", "range", "bool", "isinstance") and isinstance(
                call.func, ast.Name
            ):
                return EMPTY
            if bare in ("list", "tuple", "iter", "reversed", "enumerate"):
                # Materializing an unordered collection keeps its order taint.
                return arg_taint

            # -- sinks -------------------------------------------------------
            if bare in SINKS:
                is_rng_method = bare in ("fork", "stream")
                plausible = True
                if is_rng_method:
                    # Only treat .fork/.stream as RngStreams when the
                    # receiver looks like an RNG factory (rng/streams name).
                    recv = dotted_name(call.func.value) or ""
                    leaf = recv.split(".")[-1]
                    plausible = "rng" in leaf or "stream" in leaf
                if plausible:
                    check_sink(call, bare, SINKS[bare], env, reporting)
                return EMPTY if bare != "stream" else recv_taint

            # -- interprocedural via summaries -------------------------------
            callee = self._resolve(call.func)
            if callee is not None:
                summary = self.summaries.get(callee.qualname, Summary())
                # Map arguments onto callee parameter positions.
                arg_by_index: Dict[int, ast.expr] = {}
                for i, a in enumerate(call.args):
                    arg_by_index[i] = a
                for kw in call.keywords:
                    if kw.arg is not None:
                        idx = callee.param_index(kw.arg)
                        if idx is not None:
                            arg_by_index[idx] = kw.value
                for idx, desc in summary.sink_params:
                    arg = arg_by_index.get(idx)
                    if arg is None:
                        continue
                    taint = eval_expr(arg, env, reporting)
                    if not reporting:
                        for kind, d in taint:
                            if kind == "param" and isinstance(d, int):
                                record_sink_param(d, desc)
                        continue
                    nd = _descs(taint, "nd")
                    ords = _descs(taint, "ord")
                    if nd or ords:
                        what = nd[0] if nd else f"iteration order: {ords[0]}"
                        add_finding(
                            call, "AGL009",
                            f"nondeterministic value ({what}) reaches "
                            f"{desc} via {callee.name}()",
                        )
                result: Set[Label] = set()
                for kind, desc in summary.return_labels:
                    if kind == "param" and isinstance(desc, int):
                        arg = arg_by_index.get(desc)
                        if arg is not None:
                            result |= eval_expr(arg, env, reporting)
                    else:
                        result.add((kind, desc))
                return frozenset(result)

            # Unknown call: propagate value labels of inputs, assume the
            # result is an ordered value (documented unsoundness).
            return _strip(arg_taint | recv_taint, "set")

        # -- transfer -----------------------------------------------------------

        def transfer(env: Env[Taint], item: Item, reporting: bool) -> Env[Taint]:
            if isinstance(item, ForBind):
                it = eval_expr(item.iter, env, reporting)
                bind_target(item.target, element_labels(it), env)
                return env
            if isinstance(item, WithBind):
                val = eval_expr(item.ctx, env, reporting)
                if item.target is not None:
                    bind_target(item.target, val, env)
                return env
            if isinstance(item, Test):
                eval_expr(item.expr, env, reporting)
                return env
            if isinstance(item, ast.Assign):
                val = eval_expr(item.value, env, reporting)
                for tgt in item.targets:
                    bind_target(tgt, val, env)
                return env
            if isinstance(item, ast.AnnAssign):
                if item.value is not None:
                    bind_target(
                        item.target, eval_expr(item.value, env, reporting), env
                    )
                return env
            if isinstance(item, ast.AugAssign):
                val = eval_expr(item.value, env, reporting)
                if isinstance(item.target, ast.Name):
                    prior = env.get(item.target.id, EMPTY)
                    env[item.target.id] = prior | val
                if (
                    reporting
                    and isinstance(item.op, (ast.Add, ast.Sub))
                    and not isinstance(item.value, ast.Constant)
                    and _descs(val, "ord")
                ):
                    tgt = ast.unparse(item.target)
                    add_finding(
                        item, "AGL010",
                        f"order-dependent accumulation: {tgt} += value bound "
                        f"by iterating an unordered collection "
                        f"({_descs(val, 'ord')[0]}); float accumulation is "
                        f"not associative — iterate sorted(...) instead",
                    )
                return env
            if isinstance(item, ast.Return):
                labels = eval_expr(item.value, env, reporting)
                return_labels.update(labels)
                return env
            if isinstance(item, ast.Expr):
                eval_expr(item.value, env, reporting)
                return env
            if isinstance(item, (ast.Assert, ast.Delete)):
                return env
            if isinstance(item, ast.Raise):
                if item.exc is not None:
                    eval_expr(item.exc, env, reporting)
                return env
            return env

        init: Env[Taint] = {
            name: frozenset({("param", i)})
            for i, name in enumerate(info.params)
        }
        solver: ForwardSolver[Taint] = ForwardSolver(
            graph,
            transfer=lambda env, item: transfer(env, item, reporting=False),
            join_value=lambda a, b: a | b,
        )
        solver.solve(init)
        # `acc = acc + x` order-dependence needs the Assign case too:
        def report(env: Env[Taint], _block: object, item: Item) -> Env[Taint]:
            if emit and isinstance(item, ast.Assign):
                tgt_names = {
                    t.id for t in item.targets if isinstance(t, ast.Name)
                }
                used = {
                    n.id
                    for n in ast.walk(item.value)
                    if isinstance(n, ast.Name)
                }
                if tgt_names & used and isinstance(item.value, ast.BinOp):
                    val = eval_expr(item.value, dict(env), False)
                    if _descs(val, "ord"):
                        name = sorted(tgt_names & used)[0]
                        add_finding(
                            item, "AGL010",
                            f"order-dependent accumulation: {name} = {name} "
                            f"+ ... over an unordered collection "
                            f"({_descs(val, 'ord')[0]}); iterate "
                            f"sorted(...) instead",
                        )
            return transfer(env, item, reporting=emit)

        return_labels.clear()
        sink_params.clear()
        solver.sweep(report)
        summary = Summary(
            return_labels=frozenset(return_labels),
            sink_params=tuple(sorted(sink_params.items())),
        )
        return summary, findings


def analyze_taint(files: Sequence[SourceFile]) -> List[Finding]:
    """Run AGL009/AGL010 over the given files."""
    return TaintAnalyzer(files).run()


__all__ = ["TaintAnalyzer", "Summary", "analyze_taint"]
