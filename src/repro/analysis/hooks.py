"""Global attach switch used by the ``--agile-checks`` pytest flag.

This module deliberately imports nothing from :mod:`repro.core` at import
time: :class:`~repro.core.host.AgileHost` calls :func:`maybe_attach` at the
end of its constructor, and the real attach machinery is imported lazily
only when checks are enabled, so the hook adds one boolean test to hosts
built with analysis off.
"""

from __future__ import annotations

from typing import Any, Optional

_enabled = False


def enable() -> None:
    """Turn on automatic checker attachment for every new AgileHost."""
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def enabled() -> bool:
    return _enabled


def maybe_attach(host: Any) -> Optional[Any]:
    """Attach the full analysis session to ``host`` iff checks are enabled.

    Returns the :class:`~repro.analysis.AnalysisSession` or ``None``.
    """
    if not _enabled:
        return None
    from repro.analysis import attach

    return attach(host)
