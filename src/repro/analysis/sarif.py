"""SARIF 2.1.0 export and the committed findings baseline.

The flow CLI fails CI only on findings that are **new** relative to a
committed baseline file (``flow-baseline.json`` at the repo root):
pre-existing accepted findings carry a one-line justification, keep the
tree auditable, and stop the gate from blocking unrelated PRs.  Baseline
matching is by :meth:`~repro.analysis.source.Finding.fingerprint` —
rule + path + message, line-independent — so edits above a finding do
not invalidate its entry.

:func:`to_sarif` emits a SARIF 2.1.0 log consumable by GitHub code
scanning; baselined findings are included with an ``external``
suppression (so they annotate but do not alert), new findings are plain
results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.source import Finding, sort_findings

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Rule metadata for the SARIF ``tool.driver.rules`` table (and ``--help``).
RULES: Dict[str, Tuple[str, str]] = {
    "AGL000": (
        "Syntax error",
        "The file could not be parsed; no other rule ran on it.",
    ),
    "AGL009": (
        "Determinism taint reaches a scheduler/seed sink",
        "A value derived from a nondeterministic source (id(), hash(), "
        "set iteration, dict.popitem, wall clock, unseeded RNG) flows "
        "into a scheduler delay, event payload, or RngStreams seed — "
        "two runs of the same seed can diverge.",
    ),
    "AGL010": (
        "Order-dependent float accumulation",
        "A float reduction accumulates over an unordered collection; "
        "non-associative addition makes the total depend on iteration "
        "order.  Iterate sorted(...) instead.",
    ),
    "AGL011": (
        "Unit inconsistency",
        "Mixed-unit arithmetic (ns/bytes/pages/cycles inferred from "
        "naming conventions) or a unit-less constant used as a "
        "scheduler delay.",
    ),
    "AGL012": (
        "Unreleased lock/slot on a non-exception path",
        "An acquired lock, SQ slot, or pinned cache line does not reach "
        "a matching release on every non-exception path, or the static "
        "lock-order graph contains a cycle.",
    ),
}


@dataclass
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    message: str
    justification: str

    def to_dict(self) -> Dict[str, str]:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "message": self.message,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """The committed set of accepted findings."""

    entries: List[BaselineEntry] = field(default_factory=list)

    @property
    def by_fingerprint(self) -> Dict[str, BaselineEntry]:
        return {e.fingerprint: e for e in self.entries}

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = [
            BaselineEntry(
                fingerprint=str(e["fingerprint"]),
                rule=str(e.get("rule", "")),
                path=str(e.get("path", "")),
                message=str(e.get("message", "")),
                justification=str(e.get("justification", "")),
            )
            for e in data.get("entries", [])
        ]
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": 1,
            "tool": "python -m repro.analysis flow",
            "note": (
                "Accepted static-analysis findings.  Refresh with "
                "`python -m repro.analysis flow --update-baseline` and "
                "give every new entry a one-line justification."
            ),
            "entries": [
                e.to_dict()
                for e in sorted(
                    self.entries,
                    key=lambda e: (e.path, e.rule, e.message),
                )
            ],
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Partition into (new, baselined) findings plus stale entries
        (baselined but no longer reported — candidates for removal)."""
        known = self.by_fingerprint
        new: List[Finding] = []
        old: List[Finding] = []
        hit: set[str] = set()
        for f in sort_findings(findings):
            fp = f.fingerprint()
            if fp in known:
                old.append(f)
                hit.add(fp)
            else:
                new.append(f)
        stale = [e for e in self.entries if e.fingerprint not in hit]
        return new, old, stale

    def updated(
        self, findings: Sequence[Finding], placeholder: str = "TODO: justify"
    ) -> "Baseline":
        """A refreshed baseline covering exactly the current findings,
        preserving existing justifications."""
        known = self.by_fingerprint
        out: List[BaselineEntry] = []
        seen: set[str] = set()
        for f in sort_findings(findings):
            fp = f.fingerprint()
            if fp in seen:
                continue
            seen.add(fp)
            prior = known.get(fp)
            out.append(
                BaselineEntry(
                    fingerprint=fp,
                    rule=f.rule,
                    path=f.path,
                    message=f.message,
                    justification=(
                        prior.justification if prior is not None else placeholder
                    ),
                )
            )
        return Baseline(entries=out)


def to_sarif(
    findings: Sequence[Finding],
    baseline: Optional[Baseline] = None,
    tool_version: str = "1.0.0",
) -> Dict[str, object]:
    """Build a SARIF 2.1.0 log.  Baselined findings carry an ``external``
    suppression; new findings none."""
    known = baseline.by_fingerprint if baseline is not None else {}
    rule_ids = sorted(RULES)
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    results: List[Dict[str, object]] = []
    for f in sort_findings(findings):
        fp = f.fingerprint()
        result: Dict[str, object] = {
            "ruleId": f.rule,
            "ruleIndex": rule_index.get(f.rule, -1),
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(1, f.line),
                            "startColumn": max(1, f.col + 1),
                        },
                    }
                }
            ],
            "partialFingerprints": {"agileFlow/v1": fp},
        }
        entry = known.get(fp)
        if entry is not None:
            result["suppressions"] = [
                {
                    "kind": "external",
                    "justification": entry.justification,
                }
            ]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-flow",
                        "informationUri": (
                            "https://example.invalid/repro/analysis#flow"
                        ),
                        "version": tool_version,
                        "rules": [
                            {
                                "id": rid,
                                "name": RULES[rid][0].replace(" ", ""),
                                "shortDescription": {"text": RULES[rid][0]},
                                "fullDescription": {"text": RULES[rid][1]},
                                "defaultConfiguration": {"level": "error"},
                            }
                            for rid in rule_ids
                        ],
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {"text": "repository root"}}
                },
                "results": results,
            }
        ],
    }


def write_sarif(
    findings: Sequence[Finding],
    path: Path,
    baseline: Optional[Baseline] = None,
) -> None:
    path.write_text(
        json.dumps(to_sarif(findings, baseline), indent=2) + "\n",
        encoding="utf-8",
    )


__all__ = [
    "Baseline",
    "BaselineEntry",
    "RULES",
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "to_sarif",
    "write_sarif",
]
