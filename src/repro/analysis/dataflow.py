"""A small forward fixed-point dataflow engine over :mod:`~repro.analysis.cfg`.

Environments are plain ``dict[str, V]`` mapping variable names to lattice
values; absent keys mean bottom.  A rule pack supplies:

- ``transfer(env, item) -> env`` — the per-item transfer function (must be
  pure: findings are emitted in a separate reporting sweep after the
  solution stabilises, so revisits during iteration never duplicate them);
- ``join_value(a, b) -> V`` — the value lattice's join;
- optionally ``edge_transfer(env, block, edge) -> env`` — refine the
  environment along a labelled edge (e.g. ``try_acquire`` true-branches).

Termination holds because every value lattice used here has finite height
(taint label sets over a finite label universe; the small unit enum; sets
of acquire sites) and joins only move up.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Generic, Optional, Set, TypeVar

from repro.analysis.cfg import Block, Cfg, Edge, Item

V = TypeVar("V")
Env = Dict[str, V]


def join_envs(
    a: "Env[V]", b: "Env[V]", join_value: Callable[[V, V], V]
) -> "Env[V]":
    """Pointwise join; keys missing on one side keep the other's value
    (bottom joins to the present value)."""
    if not a:
        return dict(b)
    if not b:
        return dict(a)
    out = dict(a)
    for key, val in b.items():
        have = out.get(key)
        out[key] = val if have is None else join_value(have, val)
    return out


def envs_equal(a: "Env[V]", b: "Env[V]") -> bool:
    return a == b


class ForwardSolver(Generic[V]):
    """Worklist solver producing a stable in-environment per block."""

    def __init__(
        self,
        graph: Cfg,
        *,
        transfer: Callable[["Env[V]", Item], "Env[V]"],
        join_value: Callable[[V, V], V],
        edge_transfer: Optional[
            Callable[["Env[V]", Block, Edge], "Env[V]"]
        ] = None,
        follow_exceptional: bool = True,
    ) -> None:
        self.graph = graph
        self.transfer = transfer
        self.join_value = join_value
        self.edge_transfer = edge_transfer
        self.follow_exceptional = follow_exceptional
        self.block_in: Dict[int, Env[V]] = {}

    def solve(self, init: Optional["Env[V]"] = None) -> Dict[int, "Env[V]"]:
        self.block_in = {self.graph.entry.id: dict(init or {})}
        worklist: Deque[Block] = deque([self.graph.entry])
        queued: Set[int] = {self.graph.entry.id}
        while worklist:
            block = worklist.popleft()
            queued.discard(block.id)
            env = dict(self.block_in.get(block.id, {}))
            for item in block.items:
                env = self.transfer(env, item)
            for edge in block.edges:
                if edge.kind == "ex" and not self.follow_exceptional:
                    continue
                out = env
                if self.edge_transfer is not None:
                    out = self.edge_transfer(dict(env), block, edge)
                have = self.block_in.get(edge.target.id)
                merged = (
                    dict(out)
                    if have is None
                    else join_envs(have, out, self.join_value)
                )
                if have is None or not envs_equal(have, merged):
                    self.block_in[edge.target.id] = merged
                    if edge.target.id not in queued:
                        worklist.append(edge.target)
                        queued.add(edge.target.id)
        return self.block_in

    def sweep(
        self, report: Callable[["Env[V]", Block, Item], "Env[V]"]
    ) -> None:
        """One deterministic post-solution pass over every reachable block,
        in block-id order, re-running the transfer via ``report`` (which
        may emit findings and must return the post-item environment)."""
        for block in self.graph.blocks:
            env = self.block_in.get(block.id)
            if env is None:
                continue
            env = dict(env)
            for item in block.items:
                env = report(env, block, item)


__all__ = ["Env", "ForwardSolver", "envs_equal", "join_envs"]
