"""Runtime protocol-invariant checkers (paper Algs. 1-2, §3.4, §3.4.1).

Each checker subscribes to an :class:`~repro.sim.trace.EventLog` and
validates the protocol-level claims the paper makes but the models do not
mechanically enforce.  Checkers raise :class:`InvariantViolation` *inside*
the emitting model call, so a protocol bug fails the simulation at the
exact simulated instant it happens instead of surfacing later as a
plausible-looking but wrong bandwidth number.

Because checkers consume events rather than patching model internals, a
seeded violation can be demonstrated by feeding a synthetic event stream —
which is exactly how ``tests/analysis`` proves each checker class fires.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.core.cache import LineState
from repro.core.sharetable import BufState
from repro.sim.engine import SimError
from repro.sim.trace import EventLog, TraceEvent


class InvariantViolation(SimError):
    """A protocol invariant was broken at simulation time."""


class InvariantChecker:
    """Base class: subscribes to a log, dispatches by event kind."""

    #: Event-kind prefix this checker wants (e.g. ``"sq."``).
    PREFIX = ""

    def __init__(self) -> None:
        self.events_checked = 0

    def attach(self, log: EventLog) -> "InvariantChecker":
        log.subscribe(self._on_event)
        return self

    def _on_event(self, event: TraceEvent) -> None:
        if self.PREFIX and not event.kind.startswith(self.PREFIX):
            return
        self.events_checked += 1
        self.check(event)

    def check(self, event: TraceEvent) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def fail(self, event: TraceEvent, message: str) -> None:
        raise InvariantViolation(
            f"[{type(self).__name__}] t={event.t:.0f} ns: {message} "
            f"(event: {event.kind} {event.data.get('qid', '')})"
        )


class SqConformanceChecker(InvariantChecker):
    """NVMe submission-queue conformance (paper Algorithm 2).

    Checked per SQ object (events carry ``src``):

    - **CID uniqueness**: a CID published while a command with the same CID
      is still in flight on the same SQ is a violation — the paper requires
      CIDs to be unique among outstanding commands of a queue.
    - **Tail monotonicity and bounds**: the issued tail never regresses and
      never passes the allocation tail; the device fetch pointer never
      passes the doorbell-visible tail.
    - **Doorbell-write ordering vs. SQE visibility**: a doorbell ring for a
      tail value larger than the number of ISSUED (memory-visible) SQEs
      means the device could fetch garbage — the §2.3.3 hazard AGILE's
      doorbell lock exists to prevent.  Ring values must also be monotonic.
    """

    PREFIX = ""  # consumes sq.* and mmio.* (doorbell) events

    def __init__(self) -> None:
        super().__init__()
        #: Per-SQ in-flight CIDs (publish .. release window).
        self._inflight: Dict[int, Set[int]] = {}
        self._issued_tail: Dict[int, int] = {}
        self._rung: Dict[int, int] = {}
        #: Maps a doorbell object id to its SQ object id (set by attach_sq).
        self._db_to_sq: Dict[int, int] = {}

    def attach_sq(self, sq) -> None:
        """Associate an SQ's doorbell with it for ring-ordering checks."""
        self._db_to_sq[id(sq.doorbell)] = id(sq)

    def _on_event(self, event: TraceEvent) -> None:
        if event.kind.startswith("sq.") or (
            event.kind == "mmio.ring" and id(event.get("src")) in (
                self._db_to_sq
            )
        ):
            self.events_checked += 1
            self.check(event)

    def check(self, event: TraceEvent) -> None:
        if event.kind == "mmio.ring":
            sq_key = self._db_to_sq[id(event.get("src"))]
            value = event["value"]
            if value < self._rung.get(sq_key, 0):
                self.fail(
                    event,
                    f"SQ doorbell regressed: rang {value} after "
                    f"{self._rung[sq_key]}",
                )
            if value > self._issued_tail.get(sq_key, 0):
                self.fail(
                    event,
                    f"doorbell rang tail {value} but only "
                    f"{self._issued_tail.get(sq_key, 0)} SQEs are "
                    f"memory-visible (ISSUED) — device would fetch garbage",
                )
            self._rung[sq_key] = value
            return
        key = id(event.get("src"))
        if event.kind == "sq.publish":
            cids = self._inflight.setdefault(key, set())
            cid = event["cid"]
            if cid in cids:
                self.fail(
                    event,
                    f"CID {cid} reused on SQ{event['qid']} while a command "
                    f"with the same CID is still in flight",
                )
            cids.add(cid)
        elif event.kind == "sq.release":
            # CID == slot in this implementation (queue.py try_reserve).
            self._inflight.setdefault(key, set()).discard(event["slot"])
        elif event.kind == "sq.advance":
            tail = event["tail"]
            prev = self._issued_tail.get(key, 0)
            if tail < prev:
                self.fail(event, f"issued tail regressed: {tail} < {prev}")
            if tail > event["alloc_tail"]:
                self.fail(
                    event,
                    f"issued tail {tail} passed alloc tail "
                    f"{event['alloc_tail']}",
                )
            self._issued_tail[key] = tail
        elif event.kind == "sq.fetch":
            if event["fetch_head"] > event["doorbell"]:
                self.fail(
                    event,
                    f"device fetch head {event['fetch_head']} passed the "
                    f"visible doorbell value {event['doorbell']}",
                )

    def inflight(self, sq) -> Set[int]:
        """In-flight CIDs currently tracked for one SQ (introspection)."""
        return set(self._inflight.get(id(sq), set()))


class CqPhaseChecker(InvariantChecker):
    """NVMe completion-queue conformance (paper Algorithm 1).

    - **Phase-bit discipline**: the phase of a posted CQE must match the
      pass parity of its monotonic position (True on even passes), i.e. the
      bit toggles exactly once per ring wrap and is constant within a pass.
    - **Post position monotonicity**: CQEs are posted at consecutive
      monotonic positions, one per post.
    - **No overwrite of unconsumed entries**: a post at position ``p``
      requires ``p - head_doorbell < depth`` — otherwise the device just
      destroyed a completion the host never saw (§2.1's stall hazard turned
      data loss).
    - **Host head bounds**: ``consume_to`` positions are monotonic.
    """

    PREFIX = "cq."

    def __init__(self, depth_of=None) -> None:
        super().__init__()
        self._next_pos: Dict[int, int] = {}
        self._consumed: Dict[int, int] = {}
        #: Optional callable mapping a CQ src object to its depth; when
        #: None the src object's ``depth`` attribute is used.
        self._depth_of = depth_of

    def check(self, event: TraceEvent) -> None:
        key = id(event.get("src"))
        if event.kind == "cq.post":
            pos = event["pos"]
            expected = self._next_pos.get(key)
            if expected is not None and pos != expected:
                self.fail(
                    event,
                    f"CQE posted at position {pos}, expected {expected} "
                    f"(posts must be consecutive)",
                )
            src = event.get("src")
            depth = (
                self._depth_of(src) if self._depth_of is not None
                else getattr(src, "depth", None)
            )
            if depth:
                expected_phase = (pos // depth) % 2 == 0
                if event["phase"] != expected_phase:
                    self.fail(
                        event,
                        f"phase bit {event['phase']} at position {pos} "
                        f"breaks per-wrap discipline (expected "
                        f"{expected_phase} on pass {pos // depth})",
                    )
                head = event.get("head_doorbell", 0)
                if pos - head >= depth:
                    self.fail(
                        event,
                        f"CQE at position {pos} overwrites an unconsumed "
                        f"entry (head doorbell {head}, depth {depth})",
                    )
            self._next_pos[key] = pos + 1
        elif event.kind == "cq.consume":
            pos = event["pos"]
            prev = self._consumed.get(key, 0)
            if pos < prev:
                self.fail(event, f"host head regressed: {pos} < {prev}")
            self._consumed[key] = pos


#: Paper-legal transitions of the four-state software cache (§3.4).
LEGAL_LINE_TRANSITIONS: Set[Tuple[LineState, LineState]] = {
    (LineState.INVALID, LineState.BUSY),    # case (b): claim + fill
    (LineState.INVALID, LineState.READY),   # host preload (test methodology)
    (LineState.BUSY, LineState.READY),      # fill completes
    (LineState.READY, LineState.MODIFIED),  # write hit
    (LineState.READY, LineState.BUSY),      # clean eviction + re-claim
    (LineState.MODIFIED, LineState.BUSY),   # dirty eviction + re-claim
}

#: Transitions legal only on the fault-recovery path, keyed by the reasons
#: that justify them.  ``BUSY -> INVALID`` normally means dropping an
#: in-flight fill; with reason ``fill_error`` it is the *required* recovery
#: action for a fill whose NVMe command completed with an error status
#: (the line must not stick in BUSY).
FAILURE_LINE_TRANSITIONS: Dict[Tuple[LineState, LineState], Set[str]] = {
    (LineState.BUSY, LineState.INVALID): {"fill_error"},
}


class CacheStateChecker(InvariantChecker):
    """Cache line FSM legality: only §3.4 transitions may occur.

    Notably illegal: ``BUSY -> MODIFIED`` (writing a line whose fill is in
    flight), ``BUSY -> INVALID`` (dropping an in-flight fill) unless the
    fill *failed* (reason ``fill_error``), and ``INVALID -> MODIFIED``
    (dirtying a line that holds no data).
    """

    PREFIX = "cache.state"

    def __init__(self) -> None:
        super().__init__()
        self.transitions = 0

    def check(self, event: TraceEvent) -> None:
        old, new = event["old"], event["new"]
        self.transitions += 1
        if (old, new) in LEGAL_LINE_TRANSITIONS:
            return
        allowed_reasons = FAILURE_LINE_TRANSITIONS.get((old, new))
        if allowed_reasons and event.get("reason") in allowed_reasons:
            return
        self.fail(
            event,
            f"illegal cache-line transition {old.name} -> {new.name} "
            f"on line {event['line']} (tag {event['tag']}, "
            f"reason {event.get('reason', '')!r})",
        )


#: Legal Share Table transitions (paper §3.4.1 MOESI reinterpretation).
LEGAL_BUF_TRANSITIONS: Set[Tuple[BufState, BufState]] = {
    (BufState.EXCLUSIVE, BufState.SHARED),    # second reader joins
    (BufState.EXCLUSIVE, BufState.MODIFIED),  # owner writes
    (BufState.EXCLUSIVE, BufState.INVALID),   # sole owner retires
    (BufState.SHARED, BufState.OWNED),        # a sharer writes
    (BufState.SHARED, BufState.INVALID),      # last sharer retires
    (BufState.MODIFIED, BufState.OWNED),      # reader joins dirty buffer
    (BufState.MODIFIED, BufState.INVALID),    # propagated + retired
    (BufState.OWNED, BufState.INVALID),       # propagated + retired
}


class ShareTableChecker(InvariantChecker):
    """Share Table coherence (paper §3.4.1).

    - **Transition legality** among the five MOESI-style buffer states.
    - **Single ownership**: a new registration must never displace an entry
      that still has live references to a *different* buffer — two live
      owners for one (ssd, lba) source would fork the data.
    - **Invalidation precedes ownership transfer**: retirement
      (``-> INVALID``) requires refcount zero.
    """

    PREFIX = "share."

    def __init__(self) -> None:
        super().__init__()

    def check(self, event: TraceEvent) -> None:
        if event.kind == "share.state":
            old, new = event["old"], event["new"]
            if (old, new) not in LEGAL_BUF_TRANSITIONS:
                self.fail(
                    event,
                    f"illegal share-entry transition {old.name} -> "
                    f"{new.name} for source {event['tag']}",
                )
            if new is BufState.INVALID and event["refcount"] != 0:
                self.fail(
                    event,
                    f"entry {event['tag']} invalidated with refcount "
                    f"{event['refcount']} — invalidation must follow the "
                    f"last release",
                )
        elif event.kind == "share.register":
            if (
                event["replaced_refcount"] > 0
                and not event["replaced_same_buf"]
            ):
                self.fail(
                    event,
                    f"source {event['tag']} re-registered to a second "
                    f"buffer while {event['replaced_refcount']} references "
                    f"to the first are live (two owners)",
                )


def standard_checkers(
    queue_pairs=None,
) -> list[InvariantChecker]:
    """Build one of each checker; ``queue_pairs`` (nested iterables of
    :class:`~repro.nvme.queue.QueuePair`) wires SQ doorbells for the
    ring-ordering check."""
    sq = SqConformanceChecker()
    if queue_pairs is not None:
        for qps in queue_pairs:
            for qp in qps:
                sq.attach_sq(qp.sq)
    return [sq, CqPhaseChecker(), CacheStateChecker(), ShareTableChecker()]
