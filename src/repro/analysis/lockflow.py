"""Lock/slot-release path checking and the static lock-order graph (AGL012).

For every function, a forward may-analysis over the CFG tracks the set of
*held resources*: receivers of ``.acquire(...)`` / ``.acquire_spin(...)``
(including the ``yield from`` forms) and the true branch of
``if <recv>.try_acquire(...)`` / loop exit of
``while not <recv>.try_acquire(...)``.  A resource is released by
``.release(...)`` / ``.unpin(...)`` on the same receiver expression.

**AGL012** fires when some *non-exception* path (``ex`` CFG edges are
skipped; paths ending in ``raise`` are exempt) reaches the function exit
with a resource still held — unless ownership escapes the function: the
receiver is returned/yielded, stored into an attribute/container, or
passed to another call.  Escape marks transfer of the release obligation,
the idiom used by ``read_page``-style APIs that hand a pinned line to the
caller.

The same pass records every ``acquire`` performed while other resources
are held, building a **static lock-order graph** (edges ``held ->
acquired`` keyed by receiver expression).  Cycles in that graph are
latent deadlocks and also fire AGL012.  :func:`cross_validate` compares
this graph against the *dynamic* acquisition-order graph that
:class:`repro.analysis.races.LockOrderAnalyzer` builds from a recorded
run: dynamic edges whose normalized lock classes have no static
counterpart indicate the static view is missing a code path (or lock
names do not map onto receiver expressions — the default normalizer
strips indices/digits; pass your own for custom naming schemes).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import (
    Block,
    Cfg,
    Edge,
    ForBind,
    Item,
    Test,
    WithBind,
    build_cfg,
    iter_functions,
)
from repro.analysis.dataflow import Env, ForwardSolver
from repro.analysis.source import Finding, SourceFile, dotted_name

ACQUIRE_METHODS = {"acquire", "acquire_spin"}
TRY_ACQUIRE_METHODS = {"try_acquire"}
RELEASE_METHODS = {"release", "unpin"}

#: Held-resource lattice value: acquire line numbers for the receiver.
Sites = FrozenSet[int]


def _receiver_key(call: ast.Call) -> Optional[str]:
    """Canonical receiver-expression key of a lock-protocol call."""
    if not isinstance(call.func, ast.Attribute):
        return None
    try:
        return ast.unparse(call.func.value)
    except Exception:  # pragma: no cover - unparse is total on valid ASTs
        return None


def _protocol_call(node: ast.expr) -> Optional[Tuple[str, str, ast.Call]]:
    """Unwrap ``(yield from)? <recv>.<verb>(...)`` into (verb, key, call)."""
    expr = node
    if isinstance(expr, (ast.Await, ast.YieldFrom)):
        expr = expr.value
    if isinstance(expr, ast.Yield) and expr.value is not None:
        expr = expr.value
    if not isinstance(expr, ast.Call) or not isinstance(expr.func, ast.Attribute):
        return None
    verb = expr.func.attr
    if verb not in ACQUIRE_METHODS | TRY_ACQUIRE_METHODS | RELEASE_METHODS:
        return None
    key = _receiver_key(expr)
    if key is None:
        return None
    return verb, key, expr


def _try_acquire_test(expr: ast.expr) -> Optional[Tuple[str, bool]]:
    """Recognize ``<recv>.try_acquire(...)`` tests, possibly negated.
    Returns (receiver key, value-of-branch-that-holds)."""
    negated = False
    while isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Not):
        negated = not negated
        expr = expr.operand
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in TRY_ACQUIRE_METHODS
    ):
        key = _receiver_key(expr)
        if key is not None:
            return key, not negated
    return None


def _base_name(key: str) -> Optional[str]:
    """Leftmost identifier of a receiver key (``self.cache.lock`` ->
    ``self``; ``lock`` -> ``lock``)."""
    m = re.match(r"[A-Za-z_][A-Za-z0-9_]*", key)
    return m.group(0) if m else None


@dataclass(frozen=True)
class LockOrderEdge:
    """``held`` was held while ``acquired`` was acquired."""

    held: str
    acquired: str
    path: str
    line: int


@dataclass
class StaticLockGraph:
    """Acquisition-order edges collected across every analyzed function."""

    edges: List[LockOrderEdge] = field(default_factory=list)
    _seen: Set[LockOrderEdge] = field(default_factory=set)

    def add(self, edge: LockOrderEdge) -> None:
        if edge not in self._seen:
            self._seen.add(edge)
            self.edges.append(edge)

    def edge_pairs(self) -> Set[Tuple[str, str]]:
        return {(e.held, e.acquired) for e in self.edges}

    def cycles(self) -> List[List[str]]:
        """Canonicalized simple cycles (smallest node first, deduplicated,
        sorted) — same contract as the dynamic analyzer's."""
        graph: Dict[str, Set[str]] = {}
        for held, acquired in self.edge_pairs():
            graph.setdefault(held, set()).add(acquired)
        out: List[List[str]] = []
        seen: Set[Tuple[str, ...]] = set()
        visiting: List[str] = []
        state: Dict[str, int] = {}

        def canon(nodes: List[str]) -> List[str]:
            pivot = nodes.index(min(nodes))
            return nodes[pivot:] + nodes[:pivot]

        def dfs(node: str) -> None:
            state[node] = 1
            visiting.append(node)
            for nxt in sorted(graph.get(node, ())):
                if state.get(nxt, 0) == 1:
                    nodes = canon(visiting[visiting.index(nxt):])
                    key = tuple(nodes)
                    if key not in seen:
                        seen.add(key)
                        out.append(nodes + [nodes[0]])
                elif state.get(nxt, 0) == 0:
                    dfs(nxt)
            visiting.pop()
            state[node] = 2

        for node in sorted(graph):
            if state.get(node, 0) == 0:
                dfs(node)
        out.sort()
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "edges": [
                {
                    "held": e.held,
                    "acquired": e.acquired,
                    "path": e.path,
                    "line": e.line,
                }
                for e in sorted(
                    self.edges, key=lambda e: (e.path, e.line, e.held, e.acquired)
                )
            ],
            "cycles": self.cycles(),
        }


def default_normalizer(name: str) -> str:
    """Map a lock/receiver name to a coarse lock class: strip digits,
    indexing, and whitespace (``self.locks[i]`` ~ ``self.locks``;
    ``line3.lock`` ~ ``line.lock``)."""
    name = re.sub(r"\[[^\]]*\]", "", name)
    name = re.sub(r"[0-9]+", "", name)
    return name.replace(" ", "")


def cross_validate(
    static: StaticLockGraph,
    dynamic_edges: Iterable[Tuple[str, str]],
    normalize=default_normalizer,
) -> List[str]:
    """Dynamic acquisition-order edges (from
    :meth:`LockOrderAnalyzer.edge_pairs`) with no static counterpart,
    after normalization — each is a code path the static graph missed."""
    static_classes = {
        (normalize(a), normalize(b)) for a, b in static.edge_pairs()
    }
    missing: Set[Tuple[str, str]] = set()
    for a, b in dynamic_edges:
        pair = (normalize(a), normalize(b))
        if pair not in static_classes:
            missing.add(pair)
    return [f"{a} -> {b}" for a, b in sorted(missing)]


class _FunctionLockFlow:
    def __init__(
        self,
        file: SourceFile,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        order_graph: StaticLockGraph,
    ):
        self.file = file
        self.fn = fn
        self.order_graph = order_graph
        self.findings: List[Finding] = []

    # -- escape analysis ------------------------------------------------------

    def _escaped_bases(self) -> Set[str]:
        """Base variable names whose ownership leaves this function:
        returned, yielded, stored into attributes/containers, or passed as
        a call argument (lock-protocol calls themselves excluded)."""
        escaped: Set[str] = set()

        def names_in(expr: Optional[ast.expr]) -> Set[str]:
            if expr is None:
                return set()
            return {
                n.id for n in ast.walk(expr) if isinstance(n, ast.Name)
            }

        for node in ast.walk(self.fn):
            if isinstance(node, ast.Return):
                escaped |= names_in(node.value)
            elif isinstance(node, ast.Yield):
                escaped |= names_in(node.value)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for tgt in targets:
                    if isinstance(tgt, (ast.Attribute, ast.Subscript)):
                        value = (
                            node.value if node.value is not None else None
                        )
                        escaped |= names_in(value)
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr
                    in ACQUIRE_METHODS | TRY_ACQUIRE_METHODS | RELEASE_METHODS
                ):
                    continue
                for arg in node.args:
                    escaped |= names_in(arg)
                for kw in node.keywords:
                    escaped |= names_in(kw.value)
        return escaped

    # -- driver ---------------------------------------------------------------

    def run(self) -> List[Finding]:
        graph = build_cfg(self.fn)
        #: Receiver key -> names its acquire result was bound to (the
        #: pinned-line hand-off idiom: releasing via the returned token).
        result_names: Dict[str, Set[str]] = {}

        def transfer(env: Env[Sites], item: Item) -> Env[Sites]:
            exprs: List[ast.expr] = []
            bound: List[str] = []
            if isinstance(item, ast.Expr):
                exprs.append(item.value)
            elif isinstance(item, ast.Assign):
                exprs.append(item.value)
                bound = [
                    t.id for t in item.targets if isinstance(t, ast.Name)
                ]
            elif isinstance(item, ast.AnnAssign) and item.value is not None:
                exprs.append(item.value)
                if isinstance(item.target, ast.Name):
                    bound = [item.target.id]
            elif isinstance(item, ast.Return) and item.value is not None:
                exprs.append(item.value)
            for expr in exprs:
                proto = _protocol_call(expr)
                if proto is not None:
                    verb, key, call = proto
                    if verb in ACQUIRE_METHODS:
                        for held in sorted(env):
                            if env[held] and held != key:
                                self.order_graph.add(
                                    LockOrderEdge(
                                        held=held,
                                        acquired=key,
                                        path=self.file.display,
                                        line=call.lineno,
                                    )
                                )
                        env[key] = frozenset(
                            set(env.get(key, frozenset())) | {call.lineno}
                        )
                        result_names.setdefault(key, set()).update(bound)
                    elif verb in RELEASE_METHODS:
                        env[key] = frozenset()
                        # Releasing via the bound token also discharges the
                        # receiver it came from: `cache.unpin(line)` after
                        # `line = cache.acquire(...)`.
                        for arg in call.args:
                            if isinstance(arg, ast.Name):
                                for rkey, names in result_names.items():
                                    if arg.id in names:
                                        env[rkey] = frozenset()
            return env

        def edge_transfer(env: Env[Sites], block: Block, edge: Edge) -> Env[Sites]:
            if not block.items:
                return env
            last = block.items[-1]
            if not isinstance(last, Test):
                return env
            hit = _try_acquire_test(last.expr)
            if hit is None:
                return env
            key, true_holds = hit
            holds = (edge.kind == "true") == true_holds
            if edge.kind in ("true", "false"):
                if holds:
                    line = getattr(last.expr, "lineno", last.node.lineno)
                    env[key] = frozenset(
                        set(env.get(key, frozenset())) | {line}
                    )
                else:
                    env[key] = frozenset()
            return env

        solver: ForwardSolver[Sites] = ForwardSolver(
            graph,
            transfer=transfer,
            join_value=lambda a, b: a | b,
            edge_transfer=edge_transfer,
            follow_exceptional=False,
        )
        block_in = solver.solve({})
        exit_env = block_in.get(graph.exit.id)
        if not exit_env:
            return self.findings
        escaped = self._escaped_bases()
        for key in sorted(exit_env):
            sites = exit_env[key]
            if not sites:
                continue
            base = _base_name(key)
            if base is not None and base in escaped:
                continue
            if result_names.get(key, set()) & escaped:
                continue  # release obligation handed off with the token
            for line in sorted(sites):
                self.findings.append(
                    Finding(
                        self.file.display,
                        line,
                        0,
                        "AGL012",
                        f"{key}.acquire in {self.fn.name}() is not released "
                        f"on every non-exception path to function exit "
                        f"(missing {key}.release/unpin or ownership "
                        f"hand-off)",
                    )
                )
        return self.findings


def analyze_lockflow(
    files: Sequence[SourceFile],
) -> Tuple[List[Finding], StaticLockGraph]:
    """Run AGL012 over the given files; also returns the static
    lock-order graph (cycle findings included in the list)."""
    findings: List[Finding] = []
    graph = StaticLockGraph()
    for f in files:
        for fn in iter_functions(f.tree):
            findings.extend(_FunctionLockFlow(f, fn, graph).run())
    for cycle in graph.cycles():
        sites = [e for e in graph.edges if e.held == cycle[0]]
        site = min(sites, key=lambda e: (e.path, e.line)) if sites else None
        findings.append(
            Finding(
                site.path if site else (files[0].display if files else "?"),
                site.line if site else 0,
                0,
                "AGL012",
                f"static lock-order cycle: {' -> '.join(cycle)} (latent "
                f"deadlock; acquire in a consistent global order)",
            )
        )
    return findings, graph


__all__ = [
    "LockOrderEdge",
    "StaticLockGraph",
    "analyze_lockflow",
    "cross_validate",
    "default_normalizer",
]
