"""``python -m repro.analysis flow`` — the dataflow rule packs, wired up.

Runs the three CFG/dataflow rule packs (determinism taint AGL009/AGL010,
unit consistency AGL011, lock-release AGL012) over a shared
:class:`~repro.analysis.source.SourceSession`, filters the result through
the committed baseline, and reports as text and/or SARIF.

Exit status: 0 when every finding is baselined (or none), 1 on any *new*
finding, so CI gates only on regressions.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.lockflow import StaticLockGraph, analyze_lockflow
from repro.analysis.sarif import Baseline, write_sarif
from repro.analysis.source import (
    Finding,
    SourceSession,
    sort_findings,
)
from repro.analysis.taint import analyze_taint
from repro.analysis.units import analyze_units

DEFAULT_BASELINE = "flow-baseline.json"


@dataclass
class FlowResult:
    """Everything one flow run produced."""

    findings: List[Finding] = field(default_factory=list)
    lock_graph: StaticLockGraph = field(default_factory=StaticLockGraph)
    files_analyzed: int = 0


def run_flow(
    paths: Sequence[str],
    session: Optional[SourceSession] = None,
    packs: Optional[Sequence[str]] = None,
) -> FlowResult:
    """Run the dataflow rule packs over ``paths`` (files or directories).

    ``session`` lets callers share one parsed-AST cache with other passes
    (the AGL lint); ``packs`` restricts to a subset of
    ``("taint", "units", "lockflow")``.
    """
    session = session or SourceSession()
    active = set(packs) if packs is not None else {"taint", "units", "lockflow"}
    files = session.files(paths)
    result = FlowResult(files_analyzed=len(files))
    result.findings.extend(session.errors)
    if "taint" in active:
        result.findings.extend(analyze_taint(files))
    if "units" in active:
        result.findings.extend(analyze_units(files))
    if "lockflow" in active:
        lock_findings, graph = analyze_lockflow(files)
        result.findings.extend(lock_findings)
        result.lock_graph = graph
    result.findings = sort_findings(result.findings)
    return result


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis flow",
        description="CFG/dataflow static analysis: determinism taint "
        "(AGL009/AGL010), unit consistency (AGL011), lock-release paths "
        "(AGL012)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--pack", action="append", choices=["taint", "units", "lockflow"],
        help="run only the given pack(s); default: all",
    )
    parser.add_argument(
        "--sarif", metavar="FILE",
        help="write a SARIF 2.1.0 log (use '-' for stdout)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report and gate on every finding",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to cover current findings (existing "
        "justifications preserved; new entries get a TODO placeholder)",
    )
    parser.add_argument(
        "--lock-graph", metavar="FILE",
        help="also dump the static lock-order graph as JSON",
    )
    parser.add_argument(
        "--with-lint", action="store_true",
        help="also run the syntactic AGL lint off the same parsed ASTs",
    )
    args = parser.parse_args(argv)

    session = SourceSession()
    result = run_flow(args.paths, session=session, packs=args.pack)
    findings = list(result.findings)

    if args.with_lint:
        from repro.analysis.lint import lint_files

        findings.extend(
            Finding(v.path, v.line, v.col, v.code, v.message)
            for v in lint_files(session.files(args.paths))
        )
        findings = sort_findings(findings)

    baseline_path = Path(args.baseline)
    baseline = (
        Baseline() if args.no_baseline else Baseline.load(baseline_path)
    )

    if args.update_baseline:
        baseline.updated(findings).save(baseline_path)
        print(
            f"baseline updated: {baseline_path} now covers "
            f"{len({f.fingerprint() for f in findings})} finding(s)"
        )
        return 0

    new, old, stale = baseline.split(findings)

    if args.sarif:
        import json as _json

        from repro.analysis.sarif import to_sarif

        if args.sarif == "-":
            print(_json.dumps(to_sarif(findings, baseline), indent=2))
        else:
            write_sarif(findings, Path(args.sarif), baseline)

    if args.lock_graph:
        import json as _json

        Path(args.lock_graph).write_text(
            _json.dumps(result.lock_graph.to_dict(), indent=2) + "\n",
            encoding="utf-8",
        )

    for f in new:
        print(f)
    summary = (
        f"flow: {result.files_analyzed} file(s), "
        f"{len(findings)} finding(s): {len(new)} new, "
        f"{len(old)} baselined"
    )
    if stale:
        summary += (
            f", {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} (refresh with "
            f"--update-baseline)"
        )
    print(summary)
    if new:
        print(
            "new findings fail the gate; fix them or baseline with a "
            "justification (--update-baseline)"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
