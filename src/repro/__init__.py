"""AGILE reproduction: asynchronous GPU-SSD integration on a discrete-event simulator.

This package reproduces the full system described in *AGILE: Lightweight and
Efficient Asynchronous GPU-SSD Integration* (SC '25).  Because GPU-initiated
NVMe I/O cannot run natively in Python, every hardware component the paper
relies on (GPU SMs and warps, NVMe SSDs with real submission/completion
rings, PCIe links, HBM) is modelled by a deterministic discrete-event
simulator, and the AGILE algorithms run unchanged on top of it.

Public entry points:

- :class:`repro.core.host.AgileHost` — host-side orchestration (mirrors the
  paper's Listing 1 host code).
- :class:`repro.core.ctrl.AgileCtrl` — the device-side controller exposing
  ``prefetch`` / ``async_read`` / ``async_write`` / array-like APIs.
- :mod:`repro.baselines.bam` — a faithful reimplementation of the BaM
  synchronous baseline the paper compares against.
- :mod:`repro.bench.figures` — one driver per paper figure (Fig. 4-12).
"""

from repro.version import __version__
from repro.config import (
    GpuConfig,
    SsdConfig,
    PcieConfig,
    CacheConfig,
    SystemConfig,
)

__all__ = [
    "__version__",
    "GpuConfig",
    "SsdConfig",
    "PcieConfig",
    "CacheConfig",
    "SystemConfig",
]
