"""GPU high-bandwidth memory model.

Timing: a fixed load-to-use latency plus a shared bandwidth pipe.  Data: a
flat NumPy byte array; :class:`HbmBuffer` objects are views into it, so the
NVMe queues, the software cache, and user buffers all physically share the
same simulated HBM, exactly as in the paper's system diagram (Fig. 2).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.config import GpuConfig
from repro.mem.address import Allocation, BumpAllocator
from repro.sim.engine import Simulator, Timeout
from repro.sim.resources import FifoServer


class HbmBuffer:
    """A contiguous region of simulated HBM.

    ``view`` is a NumPy ``uint8`` view of the backing store — mutating it is
    how simulated DMA engines and GPU threads move real bytes around.
    """

    __slots__ = ("hbm", "allocation", "view", "label")

    def __init__(self, hbm: "Hbm", allocation: Allocation, label: str = ""):
        self.hbm = hbm
        self.allocation = allocation
        self.view = hbm.backing[allocation.addr : allocation.end]
        self.label = label

    @property
    def addr(self) -> int:
        return self.allocation.addr

    @property
    def size(self) -> int:
        return self.allocation.size

    def as_array(self, dtype: np.dtype | str, count: Optional[int] = None):
        """Reinterpret the buffer as a typed NumPy array view."""
        arr = self.view.view(dtype)
        if count is not None:
            arr = arr[:count]
        return arr

    def write_bytes(self, offset: int, data: np.ndarray | bytes) -> None:
        raw = np.frombuffer(data, dtype=np.uint8) if isinstance(data, bytes) else (
            np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        )
        self.view[offset : offset + raw.size] = raw

    def read_bytes(self, offset: int, size: int) -> np.ndarray:
        return self.view[offset : offset + size].copy()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HbmBuffer({self.label!r}, addr={self.addr:#x}, size={self.size})"


class Hbm:
    """Device memory: allocator + timing model.

    Ordinary loads/stores pay ``hbm_latency_ns`` plus their share of the
    bandwidth pipe; atomics pay ``atomic_latency_ns`` and serialize on the
    same pipe (the timing-relevant property the AGILE lock fast paths care
    about).
    """

    def __init__(self, sim: Simulator, cfg: GpuConfig, capacity: int = 1 << 31):
        self.sim = sim
        self.cfg = cfg
        self.allocator = BumpAllocator(capacity)
        self.backing = np.zeros(capacity, dtype=np.uint8)
        self._port = FifoServer(sim, name="hbm.port")
        self.loads = 0
        self.stores = 0
        self.atomics = 0
        #: Optional :class:`repro.telemetry.Counter` of HBM traffic bytes;
        #: None — the default — costs one attribute check per access.
        self.traffic = None

    def alloc(self, size: int, align: int = 64, label: str = "") -> HbmBuffer:
        return HbmBuffer(self, self.allocator.alloc(size, align), label=label)

    # -- timing paths -------------------------------------------------------

    def _occupancy_ns(self, nbytes: int) -> float:
        return nbytes / self.cfg.hbm_bytes_per_ns

    def load(self, nbytes: int) -> Generator[Any, Any, None]:
        """A read of ``nbytes`` from HBM by a GPU thread or DMA engine."""
        self.loads += 1
        if self.traffic is not None:
            self.traffic.add("load_bytes", nbytes)
        yield from self._port.process(self._occupancy_ns(nbytes))
        yield Timeout(self.cfg.hbm_latency_ns)

    def store(self, nbytes: int) -> Generator[Any, Any, None]:
        """A write of ``nbytes`` to HBM.  Writes are posted: the writer only
        pays the bandwidth occupancy, not the full round-trip latency."""
        self.stores += 1
        if self.traffic is not None:
            self.traffic.add("store_bytes", nbytes)
        yield from self._port.process(self._occupancy_ns(nbytes))

    def atomic(self) -> Generator[Any, Any, None]:
        """One global-memory atomic (CAS/exchange/add).

        Atomics serialize at the L2 atomic units: each occupies the port
        for ``atomic_service_ns`` (throughput bound) and then pays the
        round-trip latency.  Heavy atomic traffic — BaM's per-access
        bucket locking, for instance — therefore contends at scale.
        """
        self.atomics += 1
        yield from self._port.process(self.cfg.atomic_service_ns)
        yield Timeout(self.cfg.atomic_latency_ns)

    def utilization(self) -> float:
        return self._port.utilization()
