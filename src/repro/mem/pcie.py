"""PCIe link and MMIO doorbell models.

A :class:`PcieLink` is a full-duplex pair of bandwidth pipes.  A
:class:`Doorbell` is a device register exposed through the SSD's PCIe BAR:
the GPU writes it with a posted MMIO store (cheap for the writer), and the
device observes the new value one link-latency later — matching how AGILE
registers doorbells into the GPU address space with
``cudaHostRegisterIoMemory`` (paper §3.1).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.config import PcieConfig
from repro.sim.engine import Simulator, Timeout
from repro.sim.resources import BandwidthPipe


class PcieLink:
    """Full-duplex PCIe link between two devices."""

    def __init__(self, sim: Simulator, cfg: PcieConfig, name: str = "pcie"):
        self.sim = sim
        self.cfg = cfg
        self.name = name
        self.downstream = BandwidthPipe(
            sim, cfg.bytes_per_ns, cfg.latency_ns, name=f"{name}.down"
        )
        self.upstream = BandwidthPipe(
            sim, cfg.bytes_per_ns, cfg.latency_ns, name=f"{name}.up"
        )
        #: Armed by the host when the fault plan is active
        #: (:class:`repro.faults.FaultInjector`); None costs nothing.
        self.injector = None
        #: Optional :class:`repro.telemetry.Counter` of DMA payload bytes
        #: by direction; None — the default — costs one check per DMA.
        self.dma_bytes = None

    def dma_read(self, nbytes: int) -> Generator[Any, Any, None]:
        """Device reads ``nbytes`` from the far side (request + data).

        Modelled as one request latency plus the data transfer back.
        """
        if self.injector is not None:
            stall = self.injector.pcie_stall_ns(self.name)
            if stall > 0.0:
                yield Timeout(stall)
        if self.dma_bytes is not None:
            self.dma_bytes.add("read", nbytes)
        yield Timeout(self.cfg.latency_ns)
        yield from self.upstream.transfer(nbytes)

    def dma_write(self, nbytes: int) -> Generator[Any, Any, None]:
        """Device writes ``nbytes`` to the far side (posted)."""
        if self.injector is not None:
            stall = self.injector.pcie_stall_ns(self.name)
            if stall > 0.0:
                yield Timeout(stall)
        if self.dma_bytes is not None:
            self.dma_bytes.add("write", nbytes)
        yield from self.downstream.transfer(nbytes)


class Doorbell:
    """A 32-bit device register written by the GPU over MMIO.

    ``ring`` charges the *writer* only the posted-store cost; the device-side
    observer callback fires after the link latency.  Writes are ordered (the
    serialization property §2.3.3 relies on is enforced by AGILE's software
    lock, not by this register).
    """

    def __init__(
        self,
        sim: Simulator,
        cfg: PcieConfig,
        name: str = "doorbell",
        observer: Optional[Callable[[int], None]] = None,
    ):
        self.sim = sim
        self.cfg = cfg
        self.name = name
        self.observer = observer
        #: Last value made visible to the device.
        self.device_value = 0
        #: Last value written by the GPU (in flight until visible).
        self.written_value = 0
        self.rings = 0
        #: Optional :class:`~repro.sim.trace.EventLog` for protocol events.
        self.log = None
        #: Optional :class:`repro.telemetry.Telemetry` session (ring instants).
        self.tel = None

    def ring(self, value: int) -> Generator[Any, Any, None]:
        """GPU-side posted MMIO write of ``value``."""
        self.rings += 1
        self.written_value = value
        if self.tel is not None:
            self.tel.spans.instant("ring", "mem", self.name, value=value)
        if self.log is not None:
            self.log.emit("mmio.ring", src=self, name=self.name, value=value)
        yield Timeout(self.cfg.mmio_write_ns)
        arrival = self.sim.now + self.cfg.latency_ns
        # Narrow scheduler API: the in-flight value rides in the dispatch
        # record's payload, so no closure is allocated per ring.
        self.sim.schedule_at(arrival, self._deliver, value)

    def _deliver(self, value: int) -> None:
        self.device_value = value
        if self.log is not None:
            self.log.emit("mmio.deliver", src=self, name=self.name, value=value)
        if self.observer is not None:
            self.observer(value)
