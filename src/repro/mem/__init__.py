"""Memory substrate: HBM, host DRAM, PCIe links, MMIO doorbell registers.

Simulated memories are backed by real NumPy byte arrays so that every data
movement in the system (SSD DMA, cache fill, user-buffer copy) transports
actual bytes — end-to-end tests verify value correctness, not just timing.
"""

from repro.mem.address import AddressSpaceError, Allocation, BumpAllocator
from repro.mem.hbm import Hbm, HbmBuffer
from repro.mem.dram import HostDram
from repro.mem.pcie import Doorbell, PcieLink

__all__ = [
    "BumpAllocator",
    "Allocation",
    "AddressSpaceError",
    "Hbm",
    "HbmBuffer",
    "HostDram",
    "PcieLink",
    "Doorbell",
]
