"""Host DRAM tier.

Used for (a) the NVMe admin queues the host CPU manages during
initialization (paper §3.1) and (b) the optional DRAM level of the software
cache hierarchy — the first future-work extension in the paper's §5, which
this reproduction implements (see ``repro.core.cache.DramTier``).
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.mem.address import BumpAllocator
from repro.sim.engine import Simulator, Timeout
from repro.sim.resources import FifoServer


class HostDram:
    """Host memory reachable from the GPU over PCIe.

    Timing for GPU-side access = PCIe round trip + DRAM service; the PCIe
    cost dominates, which is why the DRAM tier sits *between* HBM and flash
    in the hierarchy (~1 us vs ~450 ns HBM vs ~50 us flash).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int = 1 << 30,
        bytes_per_ns: float = 25.0,
        latency_ns: float = 90.0,
    ):
        self.sim = sim
        self.latency_ns = latency_ns
        self.bytes_per_ns = bytes_per_ns
        self.allocator = BumpAllocator(capacity)
        self.backing = np.zeros(capacity, dtype=np.uint8)
        self._port = FifoServer(sim, name="dram.port")

    def alloc_view(self, size: int, align: int = 64) -> np.ndarray:
        alloc = self.allocator.alloc(size, align)
        return self.backing[alloc.addr : alloc.end]

    def access(self, nbytes: int) -> Generator[Any, Any, None]:
        """Local (CPU-side) DRAM access."""
        yield from self._port.process(nbytes / self.bytes_per_ns)
        yield Timeout(self.latency_ns)
