"""Physical-address bookkeeping for simulated device memories.

AGILE's initialization pins physically contiguous GPU memory for the NVMe
queues and the software cache and hands physical addresses to the SSDs
(paper §3.1, the GDRCopy-based setup).  The simulator mirrors that with a
simple bump allocator over a flat physical address space.
"""

from __future__ import annotations

from dataclasses import dataclass


class AddressSpaceError(RuntimeError):
    """Raised when an allocation cannot be satisfied."""


@dataclass(frozen=True)
class Allocation:
    """A contiguous physical range ``[addr, addr + size)``."""

    addr: int
    size: int

    @property
    def end(self) -> int:
        return self.addr + self.size

    def contains(self, addr: int, size: int = 1) -> bool:
        return self.addr <= addr and addr + size <= self.end


class BumpAllocator:
    """Contiguous bump allocator with alignment; no free (device lifetime).

    Pinned device allocations in the real system live for the duration of
    the program (they are registered with the SSDs), so a non-freeing
    allocator is the honest model.
    """

    def __init__(self, capacity: int, base: int = 0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.base = base
        self.capacity = capacity
        self._next = base

    @property
    def used(self) -> int:
        return self._next - self.base

    @property
    def remaining(self) -> int:
        return self.base + self.capacity - self._next

    def alloc(self, size: int, align: int = 64) -> Allocation:
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if align <= 0 or (align & (align - 1)) != 0:
            raise ValueError("alignment must be a positive power of two")
        addr = (self._next + align - 1) & ~(align - 1)
        if addr + size > self.base + self.capacity:
            raise AddressSpaceError(
                f"out of device memory: need {size} B at {addr:#x}, "
                f"capacity ends at {self.base + self.capacity:#x}"
            )
        self._next = addr + size
        return Allocation(addr=addr, size=size)
