#!/usr/bin/env python3
"""Customizing the AGILE software-cache policy (paper §3.4, §3.5).

Where the CUDA implementation uses CRTP, the Python reproduction uses plain
subclassing of ``CachePolicy``.  This example implements a protected-LRU
("segmented LRU light") policy that shields lines with repeated hits from
eviction, plugs it into an ``AgileHost``, and compares hit rates against
the built-in CLOCK on a scan-plus-hotset access mix that defeats plain
recency policies.

Run:  python examples/custom_cache_policy.py
"""

import numpy as np

from repro.config import CacheConfig, SsdConfig, SystemConfig
from repro.core import AgileHost, AgileLockChain
from repro.core.policies import CachePolicy, make_policy
from repro.gpu import KernelSpec, LaunchConfig


class ProtectedLru(CachePolicy):
    """LRU with a protection bit: lines hit at least twice are skipped once
    during victim selection, so a streaming scan cannot flush the hot set.
    """

    def attach(self, num_sets: int, ways: int) -> None:
        super().attach(num_sets, ways)
        self._stacks = [list(range(ways)) for _ in range(num_sets)]
        self._hits = np.zeros((num_sets, ways), dtype=np.int64)

    def _touch(self, set_idx: int, way: int) -> None:
        stack = self._stacks[set_idx]
        stack.remove(way)
        stack.append(way)

    def on_hit(self, set_idx: int, way: int) -> None:
        self._hits[set_idx, way] += 1
        self._touch(set_idx, way)

    def on_fill(self, set_idx: int, way: int) -> None:
        self._hits[set_idx, way] = 0
        self._touch(set_idx, way)

    def select_victim(self, set_idx, candidates):
        allowed = set(candidates)
        # First pass: evict the least-recent *unprotected* line.
        for way in self._stacks[set_idx]:
            if way in allowed and self._hits[set_idx, way] < 2:
                return way
        # Everyone is protected: demote and fall back to plain LRU.
        for way in self._stacks[set_idx]:
            if way in allowed:
                self._hits[set_idx, way] = 0
                return way
        return None


def run_with(policy, lbas):
    cfg = SystemConfig(
        cache=CacheConfig(num_lines=64, ways=8),
        ssds=(SsdConfig(name="ssd0", capacity_bytes=1 << 28),),
        queue_pairs=4,
        queue_depth=32,
    )
    host = AgileHost(cfg, policy=policy)

    def body(tc, ctrl, n_threads=32):
        chain = AgileLockChain(f"t{tc.tid}")
        tid = tc.tid % n_threads
        for k in range(tid, len(lbas), n_threads):
            line = yield from ctrl.read_page(tc, chain, 0, int(lbas[k]))
            yield from tc.hbm_load(64)
            ctrl.cache.unpin(line)

    spec = KernelSpec(name="policy_demo", body=body, registers_per_thread=40)
    with host:
        total_ns = host.run_kernel(spec, LaunchConfig(1, 32))
        host.drain()
    stats = host.cache.flush_stats()
    hit_rate = stats["hits"] / (stats["hits"] + stats["misses"])
    return total_ns, hit_rate


# Access mix: a hot set of 24 pages (fits in cache) re-read between streaming
# scans over 400 cold pages — the pattern that flushes pure recency policies.
rng = np.random.default_rng(9)
trace = []
for _ in range(6):
    trace.extend(rng.integers(0, 24, size=160).tolist())  # hot phase
    trace.extend(range(100, 500))  # scan phase
trace = np.array(trace)

for name, policy in (
    ("clock (built-in)", make_policy("clock")),
    ("lru (built-in)", make_policy("lru")),
    ("protected-lru (custom)", ProtectedLru()),
):
    total_ns, hit_rate = run_with(policy, trace)
    print(f"{name:24s} hit rate {hit_rate:6.1%}   time {total_ns / 1e6:6.2f} ms")

print("\ncustom policy plugged into AGILE without touching library code")
