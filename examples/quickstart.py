#!/usr/bin/env python3
"""Quickstart: read SSD-resident data from GPU threads through AGILE.

Mirrors the paper's Listing 1: configure the host, put data on the SSD,
start the AGILE service, run a kernel that uses the three access methods
(prefetch, async_read to a user buffer, the array-like synchronous API),
and stop the service.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.config import CacheConfig, SystemConfig
from repro.core import AgileHost, AgileLockChain
from repro.gpu import KernelSpec, LaunchConfig

# -- host-side setup (Listing 1 lines 22-40) ---------------------------------
cfg = SystemConfig(
    cache=CacheConfig(num_lines=256, ways=8, policy="clock"),
    queue_pairs=4,
    queue_depth=32,
)
host = AgileHost(cfg)

# A dataset of one million float32 values lives on the SSD.
data = np.arange(1_000_000, dtype=np.float32)
host.load_data(ssd_idx=0, start_lba=0, data=data)

results = {}
user_buffer = host.make_buffer(label="mybuf")


def kernel(tc, ctrl, out):
    """Each GPU thread reads a few elements and one full page."""
    chain = AgileLockChain(f"chain.t{tc.tid}")  # Listing 1 line 6

    # Method 1: prefetch a page we will need later (asynchronous).
    yield from ctrl.prefetch(tc, chain, 0, tc.tid % 64)

    # Method 3: array-like synchronous API — the SSD as a 2-D array.
    arr = ctrl.get_array_wrap(np.float32)
    value = yield from arr.get(tc, chain, 0, tc.tid * 1000)
    out[tc.tid] = float(value)

    # Method 2: async_read into a user buffer, overlap, then wait.
    if tc.tid == 0:
        buf = yield from ctrl.async_read(tc, chain, 0, 5, user_buffer)
        yield from tc.compute(2_000)  # overlapped computation
        yield from buf.wait()  # Listing 1 line 14
        page5 = buf.as_array(np.float32)
        assert page5[0] == data[5 * 1024]
        yield from ctrl.release_buffer(tc, chain, buf)


spec = KernelSpec(name="quickstart", body=kernel, registers_per_thread=40)
with host:  # startAgile ... stopAgile
    duration_ns = host.run_kernel(spec, LaunchConfig(grid_dim=2, block_dim=64), (results,))
    host.drain()

expected = {t: float(t * 1000) for t in range(128)}
assert results == expected, "data read through AGILE must match the source"

print(f"kernel time: {duration_ns / 1e3:.1f} us (simulated)")
print(f"cache stats: {host.cache.flush_stats()}")
print(f"io stats:    {host.trace.group('io').snapshot()}")
print("quickstart OK — all 128 threads read the right values")
