#!/usr/bin/env python3
"""Reproducing the paper's Figure 1 deadlock — and AGILE's fix.

A naive asynchronous design lets each GPU thread hold its submission-queue
entries while issuing more requests.  When outstanding commands exceed SQ
capacity, every thread blocks on entries whose release depends on blocked
threads: a circular wait.  AGILE's lock-chain debugger (paper §3.5) detects
the cycle and reports it instead of hanging; AGILE's service-based design
then completes the identical workload on the same 4-entry queue.

Run:  python examples/deadlock_debugging.py
"""

from repro.baselines import NaiveAsyncEngine
from repro.config import CacheConfig, SsdConfig, SystemConfig
from repro.core import AgileHost, AgileLockChain, DeadlockError
from repro.gpu import KernelSpec, LaunchConfig
from repro.nvme.command import Opcode
from repro.sim import SimError


def make_host():
    return AgileHost(SystemConfig(
        cache=CacheConfig(num_lines=64, ways=8),
        ssds=(SsdConfig(name="ssd0", capacity_bytes=1 << 26),),
        queue_pairs=1,
        queue_depth=4,  # tiny SQ: 2 threads x 3 requests overflows it
    ))


# -- the naive design (Figure 1) ----------------------------------------------
host = make_host()
engine = NaiveAsyncEngine(host.sim, host.queue_pairs[0],
                          debugger=host.debugger)


def naive_kernel(tc, _ctrl):
    chain = AgileLockChain(f"naive.t{tc.tid}")
    tokens = []
    for i in range(3):  # 2 threads x 3 > 4 SQ entries
        token = yield from engine.async_issue(tc, chain, Opcode.READ,
                                              tc.tid * 3 + i, None)
        tokens.append(token)
    yield from engine.wait_all(tc, chain, tokens)


launch = host.gpu.launch(
    KernelSpec(name="naive", body=naive_kernel), LaunchConfig(1, 2),
    args=(None,),
)


def _wait():
    yield launch.done


proc = host.sim.spawn(_wait(), name="wait")
try:
    host.sim.run(until_procs=[proc])
    raise AssertionError("the naive design should have deadlocked")
except SimError as exc:
    cause = exc.__cause__
    assert isinstance(cause, DeadlockError)
    print("naive async design: DEADLOCK detected by the lock-chain debugger")
    print(f"  {cause}\n")

# -- AGILE on the identical workload -------------------------------------------
host = make_host()
buffers = [host.alloc_view(4096) for _ in range(6)]


def agile_kernel(tc, ctrl, bufs):
    chain = AgileLockChain(f"agile.t{tc.tid}")
    txns = []
    for i in range(3):
        idx = tc.tid * 3 + i
        txn = yield from ctrl.raw_read(tc, chain, 0, idx, bufs[idx])
        txns.append(txn)
    for txn in txns:
        yield from txn.wait()


with host:
    duration = host.run_kernel(
        KernelSpec(name="agile", body=agile_kernel), LaunchConfig(1, 2),
        (buffers,),
    )

print(f"AGILE on the same 4-entry SQ: completed in {duration / 1e3:.1f} us")
print("  (the service releases SQ entries on completion, so threads never")
print("   hold locks while blocked — the Fig. 3 hand-off)")
