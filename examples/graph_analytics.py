#!/usr/bin/env python3
"""Graph analytics on SSD-resident CSR graphs (paper §4.5).

Runs BFS and SpMV on a Kronecker (skewed) and a uniform random graph with
the AGILE and BaM systems, verifies results against scipy, and prints the
Fig. 11-style execution-time comparison.

Run:  python examples/graph_analytics.py
"""

import numpy as np

from repro.workloads.bfs import bfs_reference, run_bfs
from repro.workloads.graphs import kronecker_graph, uniform_random_graph
from repro.workloads.spmv import run_spmv, spmv_reference

N, DEGREE = 1024, 8

print("generating graphs (GAP-style)...")
u_graph = uniform_random_graph(N, degree=DEGREE, seed=3)
k_graph = kronecker_graph(int(np.log2(N)), edge_factor=DEGREE, seed=5)
k_weighted = kronecker_graph(
    int(np.log2(N)), edge_factor=DEGREE, seed=6, with_values=True
)
x = np.random.default_rng(7).random(k_weighted.num_vertices).astype(np.float32)

print(f"  U-graph: {u_graph.num_vertices} vertices, {u_graph.num_edges} edges")
print(f"  K-graph: {k_graph.num_vertices} vertices, {k_graph.num_edges} edges "
      f"(max degree {int(np.diff(k_graph.row_ptr).max())})\n")

# -- BFS ----------------------------------------------------------------------
for label, graph in (("U-graph", u_graph), ("K-graph", k_graph)):
    reference = bfs_reference(graph, 0)
    row = [label]
    for system in ("agile", "bam"):
        result = run_bfs(system, graph, 0, cache_lines=2048, num_threads=128)
        assert np.array_equal(result.distances, reference), (
            f"BFS/{system} distances diverge from scipy"
        )
        row.append(f"{system}={result.total_ns / 1e3:.0f}us")
    print("BFS ", " ".join(row), " (verified against scipy)")

# -- SpMV ---------------------------------------------------------------------
reference = spmv_reference(k_weighted, x)
for system in ("agile", "bam"):
    result = run_spmv(system, k_weighted, x, cache_lines=2048, num_threads=128)
    assert np.allclose(result.y, reference, rtol=1e-5), (
        f"SpMV/{system} result diverges from scipy"
    )
    print(f"SpMV K-graph {system}={result.total_ns / 1e3:.0f}us "
          "(verified against scipy)")

print("\ngraph analytics OK")
