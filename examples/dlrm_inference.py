#!/usr/bin/env python3
"""DLRM inference with SSD-resident embedding tables (paper §4.4).

Compares BaM, AGILE-sync, and AGILE-async end to end on DLRM Config-1 with
a synthetic Criteo-like trace, and verifies that every system gathered
exactly the right embedding bytes.

Run:  python examples/dlrm_inference.py
"""

from repro.bench.figures import DLRM_VOCAB
from repro.workloads.criteo import make_criteo_trace
from repro.workloads.dlrm import config1, expected_checksum, run_dlrm

BATCH, EPOCHS, FEATURES = 128, 5, 13

trace = make_criteo_trace(8192, vocab_sizes=DLRM_VOCAB, zipf_a=1.2, seed=1)
config = config1()
reference = expected_checksum(
    config, trace, batch=BATCH, epochs=EPOCHS, features=FEATURES
)

print(f"DLRM {config.name}: batch={BATCH}, epochs={EPOCHS}, "
      f"features={FEATURES}, MLP {config.flops_per_sample() / 1e6:.1f} "
      f"MFLOP/sample\n")

times = {}
for system in ("bam", "agile_sync", "agile_async"):
    result = run_dlrm(
        system,
        config,
        trace=trace,
        batch=BATCH,
        epochs=EPOCHS,
        features=FEATURES,
        cache_lines=2048,
        num_threads=256,
        queue_pairs=4,
        queue_depth=16,
    )
    assert abs(result.checksum - reference) < 1e-6 * abs(reference), (
        f"{system}: gathered embeddings diverge from the table"
    )
    times[system] = result.total_ns
    print(f"{system:12s}  {result.total_ns / 1e3:9.1f} us "
          f"({result.ns_per_epoch / 1e3:7.1f} us/epoch)  checksum OK")

print(f"\nAGILE sync  speedup over BaM: {times['bam'] / times['agile_sync']:.2f}x")
print(f"AGILE async speedup over BaM: {times['bam'] / times['agile_async']:.2f}x")
print("(paper, Config-1: sync 1.30x, async 1.48x at testbed scale)")
