#!/usr/bin/env python3
"""Multi-GPU SSD sharing — the paper's §5 second extension, implemented.

Two simulated GPUs share one SSD: each receives a disjoint range of the
SSD's I/O queue pairs (ring memory pinned in its own HBM) and runs its own
unchanged AGILE stack.  Their kernels execute concurrently and genuinely
contend for the shared flash channels.

Run:  python examples/multi_gpu.py
"""

import numpy as np

from repro.config import CacheConfig, SsdConfig, SystemConfig
from repro.core import AgileLockChain, MultiGpuAgileHost
from repro.gpu import KernelSpec, LaunchConfig

cfg = SystemConfig(
    cache=CacheConfig(num_lines=128, ways=8, share_table=False),
    ssds=(SsdConfig(name="shared-ssd", capacity_bytes=1 << 28),),
    queue_pairs=4,  # per GPU; the SSD serves 8 in total
    queue_depth=32,
)
host = MultiGpuAgileHost(cfg, num_gpus=2)
data = np.arange(200_000, dtype=np.int64)
host.load_data(0, 0, data)

results: dict = {}


def kernel(tc, ctrl, gpu_idx, n_threads):
    """Each GPU reads a disjoint slice of the shared dataset."""
    chain = AgileLockChain(f"g{gpu_idx}.t{tc.tid}")
    arr = ctrl.get_array_wrap(np.int64)
    tid = tc.tid % n_threads
    total = 0
    for k in range(4):
        idx = gpu_idx * 100_000 + (tid * 4 + k) * 97
        value = yield from arr.get(tc, chain, 0, idx, coalesce=False)
        assert value == idx
        total += int(value)
    results[(gpu_idx, tid)] = total


spec = KernelSpec(name="mgpu", body=kernel, registers_per_thread=40)
with host:
    makespan = host.run_kernels(
        spec, LaunchConfig(2, 64), per_gpu_args=[(0, 128), (1, 128)]
    )

print(f"2 GPUs x 128 threads over one shared SSD: {makespan / 1e3:.1f} us")
for g in range(2):
    io = host.trace.group(f"gpu{g}.io")
    cache = host.trace.group(f"gpu{g}.cache")
    print(f"  gpu{g}: {int(io['commands_submitted'])} NVMe commands, "
          f"{int(cache['misses'])} cache misses "
          f"(queue pairs {sorted(qp.qid for qp in host.nodes[g].issue.queue_pairs[0])})")
print(f"  shared SSD completed {host.ssds[0].completed_reads} reads total")
assert len(results) == 256
print("multi-GPU OK — both GPUs read correct, disjoint data")
