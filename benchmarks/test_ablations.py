"""Ablation benches for the design choices DESIGN.md calls out:
warp-level coalescing (§3.3.2), pluggable cache policies (§3.4), the
host-DRAM cache tier (§5 extension 1), and service polling-warp scaling
(Algorithm 1)."""

from repro.bench.figures import (
    abl_coalescing,
    abl_dram_tier,
    abl_policies,
    abl_polling_warps,
)


def test_abl_warp_coalescing(figure_runner):
    """Two-level coalescing must not lose to cache-only dedup on a
    Zipf-hot gather."""
    result = figure_runner(abl_coalescing, epochs=4, batch=128, features=13)
    assert result.metrics["coalescing_gain"] >= 0.95


def test_abl_cache_policies(figure_runner):
    """All four built-in policies run the same Zipf stream; recency-aware
    policies (clock/lru) must beat random on hit rate."""
    result = figure_runner(abl_policies)
    m = result.metrics
    for policy in ("clock", "lru", "fifo", "random"):
        assert 0.0 <= m[f"{policy}_hit_rate"] <= 1.0
    assert max(m["clock_hit_rate"], m["lru_hit_rate"]) >= m["random_hit_rate"]


def test_abl_dram_tier(figure_runner):
    """The host-DRAM victim tier must turn capacity misses into DRAM hits
    and speed up the re-scan."""
    result = figure_runner(abl_dram_tier)
    assert result.metrics["tier_speedup"] > 1.2


def test_abl_polling_warps(figure_runner):
    """More polling warps must never slow completion handling."""
    result = figure_runner(abl_polling_warps)
    m = result.metrics
    assert m["warps_4"] <= m["warps_1"] * 1.1
