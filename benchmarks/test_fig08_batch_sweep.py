"""Fig. 8: DLRM Config-1 speedup over BaM across batch sizes.

Paper: sync stable 1.18-1.30x; async peaks 1.75x at batch 16.  At this
reproduction's scaled trace the peak shifts toward larger batches (small
batches are almost fully covered by the Zipf-hot cache head, leaving
little communication to hide — see EXPERIMENTS.md), so the bench asserts
the robust structure: async always ahead of sync, with a strongly
batch-dependent gain whose peak magnitude lands in the paper's band.
"""

from repro.bench.figures import fig8


def test_fig8_batch_sweep(figure_runner):
    result = figure_runner(fig8, batches=(4, 16, 64, 256), epochs=5,
                           features=13)
    m = result.metrics
    gains = [m[f"async_b{b}"] for b in (4, 16, 64, 256)]
    assert all(g >= 0.95 for g in gains)  # async never loses to BaM
    assert m["peak_async"] > 1.3          # paper peak band (1.75x there)
    assert max(gains) / min(gains) > 1.2  # strongly batch-dependent
