"""Fig. 9: DLRM Config-1 under varying NVMe queue-pair counts (depth 64).

Paper: with a single queue pair the async mode's prefetch stalls waiting
for the service to recycle SQEs, so async ~= sync; the async advantage
grows with queue pairs.
"""

from repro.bench.figures import fig9


def test_fig9_queue_pair_sweep(figure_runner):
    result = figure_runner(
        fig9, queue_pairs=(1, 4, 16), epochs=5, batch=128, features=13
    )
    m = result.metrics
    # async/sync gap widens from 1 QP to the largest setting.
    assert m["gap_qp16"] >= m["gap_qp1"]
    assert m["gap_qp1"] >= 0.9  # async never collapses below sync
