"""Fig. 5: 4 KB random-read bandwidth scaling across 1-3 SSDs.

Paper: saturates at 3.7 / 7.4 / 11.1 GB/s after ~32K requests per device;
at this bench's scaled request counts the curves must already show additive
per-SSD scaling and approach the flash ceiling.
"""

from repro.bench.figures import fig5


def test_fig5_read_scaling(figure_runner):
    result = figure_runner(fig5)
    bw1 = result.metrics["bw_1ssd"]
    bw2 = result.metrics["bw_2ssd"]
    bw3 = result.metrics["bw_3ssd"]
    assert 2.5 <= bw1 <= 3.8  # approaching the 3.7 GB/s flash ceiling
    assert bw2 >= 1.7 * bw1
    assert bw3 >= 2.3 * bw1
