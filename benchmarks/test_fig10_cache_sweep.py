"""Fig. 10: DLRM Config-1 under varying software-cache sizes.

Paper: with a tiny cache the async mode's prefetches evict data before use
and it falls *behind* sync; past a threshold (~64 MB there) async overtakes
and stays ahead.  The crossover is the assertion here.
"""

from repro.bench.figures import fig10


def test_fig10_cache_sweep(figure_runner):
    result = figure_runner(
        fig10, cache_lines=(96, 256, 2048), epochs=5, batch=128, features=13
    )
    m = result.metrics
    small, large = 96, 2048
    gap_small = m[f"async_l{small}"] / m[f"sync_l{small}"]
    gap_large = m[f"async_l{large}"] / m[f"sync_l{large}"]
    # Async's edge over sync must grow with cache size (the crossover).
    assert gap_large > gap_small
    assert m[f"async_l{large}"] > 1.0
