"""Fig. 6: 4 KB random-write bandwidth scaling across 1-3 SSDs.

Paper: saturates at 2.2 / 4.4 / 6.7 GB/s.
"""

from repro.bench.figures import fig6


def test_fig6_write_scaling(figure_runner):
    result = figure_runner(fig6)
    bw1 = result.metrics["bw_1ssd"]
    bw2 = result.metrics["bw_2ssd"]
    bw3 = result.metrics["bw_3ssd"]
    assert 1.5 <= bw1 <= 2.3  # approaching the 2.2 GB/s program ceiling
    assert bw2 >= 1.7 * bw1
    assert bw3 >= 2.3 * bw1
