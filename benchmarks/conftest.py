"""Benchmark-suite configuration.

Every benchmark regenerates one paper figure (or ablation) via
``repro.bench.figures`` and reports headline metrics through
pytest-benchmark's ``extra_info`` so the JSON output records the
paper-comparison numbers alongside wall-clock timings.

The simulations are deterministic, so a single round is meaningful;
``pedantic`` mode keeps total runtime sane.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def figure_runner(benchmark, capfd):
    """Run one figure driver under pytest-benchmark and surface metrics.

    The regenerated table — the paper-vs-measured record — is printed with
    capture disabled so it reaches the console / tee'd log on passing runs.
    """

    def runner(fn, **kwargs):
        result = benchmark.pedantic(
            lambda: fn(**kwargs), rounds=1, iterations=1, warmup_rounds=0
        )
        with capfd.disabled():
            print(f"\n{result.table()}\n", flush=True)
        benchmark.extra_info.update(result.metrics)
        return result

    return runner
