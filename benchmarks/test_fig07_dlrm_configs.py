"""Fig. 7: DLRM end-to-end speedup over BaM across Configs 1-3.

Paper: AGILE sync 1.30/1.39/1.27x, async 1.48/1.63/1.32x.  This bench
asserts the reproducible structure: AGILE sync always beats BaM, async
always beats sync, and the async advantage shrinks on the compute-heavy
Config-3 (less communication left to hide).  The sync-mode *magnitude*
under-reproduces in the simulator (see EXPERIMENTS.md).
"""

from repro.bench.figures import fig7


def test_fig7_dlrm_configs(figure_runner):
    result = figure_runner(fig7, epochs=5, batch=128, features=13)
    m = result.metrics
    for config in ("config1", "config2", "config3"):
        assert m[f"{config}_sync"] > 1.0
        assert m[f"{config}_async"] > m[f"{config}_sync"]
    # Compute-heavy Config-3 must not be the clear overlap winner (paper
    # ordering, with tolerance for simulator-scale jitter).
    assert m["config3_async"] <= 1.05 * max(
        m["config1_async"], m["config2_async"]
    )
    assert 1.15 <= m["config1_async"] <= 1.9
