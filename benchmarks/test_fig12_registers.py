"""Fig. 12: per-thread register usage, BaM vs AGILE, via the KIR
register-pressure estimator.

Paper: reductions of 1.04x (VectorMean), 1.22x (BFS), 1.32x (SpMV); the
AGILE service kernel itself uses 37 registers.
"""

import pytest

from repro.bench.figures import fig12


def test_fig12_register_usage(figure_runner):
    result = figure_runner(fig12)
    m = result.metrics
    assert m["service_registers"] == 37
    assert m["vector_mean_reduction"] == pytest.approx(1.04, abs=0.06)
    assert m["bfs_reduction"] == pytest.approx(1.22, abs=0.06)
    assert m["spmv_reduction"] == pytest.approx(1.32, abs=0.06)
    assert m["vector_mean_reduction"] < m["bfs_reduction"] < m["spmv_reduction"]
