"""Fig. 11: BFS/SpMV execution-time breakdown (kernel / cache API / I/O
API) on uniform and Kronecker graphs.

Paper: AGILE reduces software-cache overhead by 1.93-3.17x and I/O
overhead by 1.06-2.85x versus BaM.  The bench asserts the cache-API
reductions (the robust part of the methodology at simulator scale) and
that AGILE's *total* runtime is lower everywhere.
"""

from repro.bench.figures import fig11


def test_fig11_graph_api_overhead(figure_runner):
    result = figure_runner(fig11, n_vertices=1024, degree=8)
    m = result.metrics
    for app in ("bfs", "spmv"):
        for gtype in ("U", "K"):
            assert m[f"{app}_{gtype}_cache_reduction"] > 1.5
    # Totals: AGILE below BaM for every workload row.
    totals = {}
    for workload, system, _k, _c, _io, total in result.rows:
        totals.setdefault(workload, {})[system] = total
    for workload, per_system in totals.items():
        assert per_system["agile"] < per_system["bam"], workload
