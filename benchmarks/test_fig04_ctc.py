"""Fig. 4: asynchronous vs synchronous I/O across CTC ratios.

Paper: speedup follows Eq. 1, peaking at 1.88x slightly below CTC = 1.
"""

from repro.bench.figures import fig4
from repro.workloads.ctc import ideal_speedup


def test_fig4_ctc_sweep(figure_runner):
    result = figure_runner(fig4)
    peak = result.metrics["peak_speedup"]
    # Paper band: peak well above 1.5x, near the balanced point, and never
    # above the pipelined-ideal envelope.
    assert 1.5 <= peak <= 2.1
    assert 0.5 <= result.metrics["peak_ctc"] <= 1.25
    for row in result.rows:
        ctc, _, _, speedup, _ = row
        assert speedup <= ideal_speedup(ctc) + 0.2
